open Lesslog_id
module Status_word = Lesslog_membership.Status_word
module Rng = Lesslog_prng.Rng

let params = Params.create ~m:5 ()
let pid = Pid.unsafe_of_int

let test_initially_live () =
  let s = Status_word.create params ~initially_live:true in
  Alcotest.(check int) "all live" 32 (Status_word.live_count s);
  Alcotest.(check bool) "live" true (Status_word.is_live s (pid 17))

let test_initially_dead () =
  let s = Status_word.create params ~initially_live:false in
  Alcotest.(check int) "none live" 0 (Status_word.live_count s);
  Alcotest.(check bool) "dead" true (Status_word.is_dead s (pid 0))

let test_set_and_count () =
  let s = Status_word.create params ~initially_live:false in
  Status_word.set_live s (pid 3);
  Status_word.set_live s (pid 3);
  Status_word.set_live s (pid 7);
  Alcotest.(check int) "idempotent live" 2 (Status_word.live_count s);
  Status_word.set_dead s (pid 3);
  Status_word.set_dead s (pid 3);
  Alcotest.(check int) "idempotent dead" 1 (Status_word.live_count s);
  Alcotest.(check int) "dead count" 31 (Status_word.dead_count s)

let test_of_live_list () =
  let s = Status_word.of_live_list params (Test_support.pids [ 1; 5; 9 ]) in
  Alcotest.(check (list int)) "live pids" [ 1; 5; 9 ]
    (Test_support.ints_of_pids (Status_word.live_pids s));
  Alcotest.(check int) "count" 3 (Status_word.live_count s)

let test_copy_isolated () =
  let s = Status_word.of_live_list params (Test_support.pids [ 1; 2 ]) in
  let c = Status_word.copy s in
  Status_word.set_dead c (pid 1);
  Alcotest.(check bool) "original untouched" true (Status_word.is_live s (pid 1));
  Alcotest.(check bool) "copy changed" false (Status_word.is_live c (pid 1))

let test_live_array () =
  let s = Status_word.of_live_list params (Test_support.pids [ 4; 2; 30 ]) in
  Alcotest.(check (list int)) "sorted array" [ 2; 4; 30 ]
    (Array.to_list (Status_word.live_array s) |> List.map Pid.to_int)

let test_random_live () =
  let s = Status_word.of_live_list params (Test_support.pids [ 11 ]) in
  let rng = Rng.create ~seed:1 in
  for _ = 1 to 20 do
    Alcotest.(check (option int)) "only candidate" (Some 11)
      (Option.map Pid.to_int (Status_word.random_live s rng))
  done;
  let empty = Status_word.create params ~initially_live:false in
  Alcotest.(check (option int)) "none" None
    (Option.map Pid.to_int (Status_word.random_live empty rng))

let test_random_dead () =
  let s = Status_word.create params ~initially_live:true in
  Status_word.set_dead s (pid 9);
  let rng = Rng.create ~seed:2 in
  Alcotest.(check (option int)) "only dead one" (Some 9)
    (Option.map Pid.to_int (Status_word.random_dead s rng))

let test_kill_fraction () =
  let s = Status_word.create params ~initially_live:true in
  let rng = Rng.create ~seed:3 in
  let victims = Status_word.kill_fraction s rng ~fraction:0.25 in
  Alcotest.(check int) "8 of 32 killed" 8 (List.length victims);
  Alcotest.(check int) "24 remain" 24 (Status_word.live_count s);
  List.iter
    (fun v ->
      Alcotest.(check bool) "victim dead" true (Status_word.is_dead s v))
    victims

let test_equal () =
  let a = Status_word.of_live_list params (Test_support.pids [ 1; 2 ]) in
  let b = Status_word.of_live_list params (Test_support.pids [ 2; 1 ]) in
  Alcotest.(check bool) "equal" true (Status_word.equal a b);
  Status_word.set_dead b (pid 1);
  Alcotest.(check bool) "not equal" false (Status_word.equal a b)

let test_epoch () =
  let s = Status_word.create params ~initially_live:true in
  let e0 = Status_word.epoch s in
  (* No-op mutations must not bump the epoch (caches stay valid). *)
  Status_word.set_live s (pid 4);
  Alcotest.(check int) "no-op set_live" e0 (Status_word.epoch s);
  Status_word.set_dead s (pid 4);
  Alcotest.(check bool) "effective set_dead bumps" true
    (Status_word.epoch s > e0);
  let e1 = Status_word.epoch s in
  Status_word.set_dead s (pid 4);
  Alcotest.(check int) "no-op set_dead" e1 (Status_word.epoch s);
  Status_word.set_live s (pid 4);
  Alcotest.(check bool) "effective set_live bumps" true
    (Status_word.epoch s > e1)

let test_uid_distinct () =
  let a = Status_word.create params ~initially_live:true in
  let b = Status_word.create params ~initially_live:true in
  let c = Status_word.copy a in
  Alcotest.(check bool) "fresh uid" true (Status_word.uid a <> Status_word.uid b);
  Alcotest.(check bool) "copy gets own uid" true
    (Status_word.uid c <> Status_word.uid a)

let test_selects () =
  let s = Status_word.of_live_list params (Test_support.pids [ 3; 8; 20 ]) in
  let get f x = Option.map Pid.to_int (f x) in
  Alcotest.(check (option int)) "at_or_below 31" (Some 20)
    (get (Status_word.first_live_at_or_below s) (pid 31));
  Alcotest.(check (option int)) "at_or_below 8" (Some 8)
    (get (Status_word.first_live_at_or_below s) (pid 8));
  Alcotest.(check (option int)) "at_or_below 2" None
    (get (Status_word.first_live_at_or_below s) (pid 2));
  Alcotest.(check (option int)) "in_range hit" (Some 8)
    (Option.map Pid.to_int
       (Status_word.first_live_in_range s ~lo:(pid 4) ~hi:(pid 19)));
  Alcotest.(check (option int)) "in_range miss" None
    (Option.map Pid.to_int
       (Status_word.first_live_in_range s ~lo:(pid 9) ~hi:(pid 19)));
  Alcotest.(check (option int)) "nth_live 1" (Some 8)
    (get (Status_word.nth_live s) 1);
  Alcotest.(check (option int)) "nth_live overflow" None
    (get (Status_word.nth_live s) 3);
  Alcotest.(check (option int)) "nth_dead 0" (Some 0)
    (get (Status_word.nth_dead s) 0);
  (* PIDs 0..2 and 4..7 are dead: the 4th dead pid (index 3) is 4. *)
  Alcotest.(check (option int)) "nth_dead skips live" (Some 4)
    (get (Status_word.nth_dead s) 3)

(* Rejection sampling must terminate (and stay uniform over the candidate
   set) even at degenerate density: a single live node among 2^m. *)
let test_random_degenerate () =
  let big = Params.create ~m:10 () in
  let s = Status_word.of_live_list big [ pid 777 ] in
  let rng = Rng.create ~seed:9 in
  for _ = 1 to 100 do
    Alcotest.(check (option int)) "sparse live" (Some 777)
      (Option.map Pid.to_int (Status_word.random_live s rng))
  done;
  let t = Status_word.create big ~initially_live:true in
  Status_word.set_dead t (pid 123);
  for _ = 1 to 100 do
    Alcotest.(check (option int)) "sparse dead" (Some 123)
      (Option.map Pid.to_int (Status_word.random_dead t rng))
  done

let prop_live_count_consistent =
  Test_support.qcheck_case ~name:"live_count = |live_pids|"
    QCheck2.Gen.(
      Test_support.gen_params >>= fun params ->
      Test_support.gen_status params >>= fun s -> return s)
    (fun s -> Status_word.live_count s = List.length (Status_word.live_pids s))

let prop_fold_matches_list =
  Test_support.qcheck_case ~name:"fold_live visits live_pids in order"
    QCheck2.Gen.(
      Test_support.gen_params >>= fun params ->
      Test_support.gen_status params >>= fun s -> return s)
    (fun s ->
      let folded =
        List.rev (Status_word.fold_live s ~init:[] ~f:(fun acc p -> p :: acc))
      in
      folded = Status_word.live_pids s)

let prop_kill_fraction_counts =
  Test_support.qcheck_case ~name:"kill_fraction removes round(f*live)"
    QCheck2.Gen.(
      Test_support.gen_params >>= fun params ->
      Test_support.gen_status params >>= fun s ->
      int_range 0 100 >>= fun pct ->
      int_range 0 1_000_000 >>= fun seed -> return (s, pct, seed))
    (fun (s, pct, seed) ->
      let live0 = Status_word.live_count s in
      let fraction = float_of_int pct /. 100.0 in
      let expected =
        int_of_float (Float.round (fraction *. float_of_int live0))
      in
      let rng = Rng.create ~seed in
      let victims = Status_word.kill_fraction s rng ~fraction in
      List.length victims = expected
      && Status_word.live_count s = live0 - expected)

let () =
  Alcotest.run "membership"
    [
      ( "status_word",
        [
          Alcotest.test_case "initially live" `Quick test_initially_live;
          Alcotest.test_case "initially dead" `Quick test_initially_dead;
          Alcotest.test_case "set/count idempotent" `Quick test_set_and_count;
          Alcotest.test_case "of_live_list" `Quick test_of_live_list;
          Alcotest.test_case "copy isolation" `Quick test_copy_isolated;
          Alcotest.test_case "live_array sorted" `Quick test_live_array;
          Alcotest.test_case "random_live" `Quick test_random_live;
          Alcotest.test_case "random_dead" `Quick test_random_dead;
          Alcotest.test_case "kill_fraction" `Quick test_kill_fraction;
          Alcotest.test_case "equality" `Quick test_equal;
          Alcotest.test_case "epoch semantics" `Quick test_epoch;
          Alcotest.test_case "uid uniqueness" `Quick test_uid_distinct;
          Alcotest.test_case "word-level selects" `Quick test_selects;
          Alcotest.test_case "degenerate-density sampling" `Quick
            test_random_degenerate;
        ] );
      ( "properties",
        [ prop_live_count_consistent; prop_fold_matches_list; prop_kill_fraction_counts ] );
    ]
