lib/flow/policy.ml: Flow Lesslog Lesslog_membership Lesslog_prng Lesslog_topology List Option
