open Lesslog_id
module Series = Lesslog_report.Series
module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Status_word = Lesslog_membership.Status_word
module Demand = Lesslog_workload.Demand
module Balance = Lesslog_flow.Balance
module Policy = Lesslog_flow.Policy
module Rng = Lesslog_prng.Rng
module Par = Lesslog_parallel.Par

type config = {
  m : int;
  capacity : float;
  rates : float list;
  trials : int;
  seed : int;
  hot_fraction : float;
  hot_share : float;
  domains : int;
}

let sweep ~from ~until ~step =
  let rec go acc x = if x > until then List.rev acc else go (x :: acc) (x +. step) in
  go [] from

let default =
  {
    m = 10;
    capacity = 100.0;
    rates = sweep ~from:1000.0 ~until:20000.0 ~step:1000.0;
    trials = 3;
    seed = 42;
    hot_fraction = 0.2;
    hot_share = 0.8;
    domains = 1;
  }

let quick =
  {
    default with
    m = 7;
    rates = sweep ~from:500.0 ~until:2500.0 ~step:500.0;
    trials = 1;
  }

type demand_model = Even | Locality

let hot_file = "hot/popular-object"

(* Every experiment point gets an independent deterministic RNG, so sweeps
   give identical results sequentially and in parallel. *)
let point_rng config ~label ~rate ~trial =
  let tag = Printf.sprintf "%d|%s|%g|%d" config.seed label rate trial in
  Rng.create ~seed:(Lesslog_hash.Fnv.hash63 tag land 0x3FFFFFFF)

let one_trial config ~rng ~dead_fraction ~demand_model ~policy ~rate =
  let params = Params.create ~m:config.m () in
  let cluster =
    if dead_fraction > 0.0 then
      Cluster.create_with_dead_fraction params ~rng ~fraction:dead_fraction
    else Cluster.create params
  in
  (match Ops.insert cluster ~key:hot_file with
  | [] -> invalid_arg "Experiments.one_trial: empty system"
  | _ -> ());
  let status = Cluster.status cluster in
  let demand =
    match demand_model with
    | Even -> Demand.uniform status ~total:rate
    | Locality ->
        Demand.locality ~hot_fraction:config.hot_fraction
          ~hot_share:config.hot_share status ~rng ~total:rate
  in
  let outcome =
    Balance.run ~rng ~cluster ~key:hot_file ~demand ~capacity:config.capacity
      ~policy ()
  in
  float_of_int outcome.Balance.replicas

let replicas_to_balance config ~rng ~dead_fraction ~demand_model ~policy ~rate =
  let total = ref 0.0 in
  for _ = 1 to config.trials do
    let trial_rng = Rng.split rng in
    total :=
      !total
      +. one_trial config ~rng:trial_rng ~dead_fraction ~demand_model ~policy
           ~rate
  done;
  !total /. float_of_int config.trials

let averaged_point config ~label ~dead_fraction ~demand_model ~policy ~rate =
  let total = ref 0.0 in
  for trial = 1 to config.trials do
    let rng = point_rng config ~label ~rate ~trial in
    total :=
      !total
      +. one_trial config ~rng ~dead_fraction ~demand_model ~policy ~rate
  done;
  (rate, !total /. float_of_int config.trials)

let series_for config ~label ~dead_fraction ~demand_model ~policy =
  let points =
    Par.map_list ~domains:config.domains
      ~f:(fun rate ->
        averaged_point config ~label ~dead_fraction ~demand_model ~policy ~rate)
      config.rates
  in
  Series.make ~label points

let policy_series config ~demand_model =
  List.map
    (fun policy ->
      series_for config ~label:(Policy.name policy) ~dead_fraction:0.0
        ~demand_model ~policy)
    Policy.all

let dead_series config ~demand_model =
  List.map
    (fun dead_fraction ->
      let label =
        Printf.sprintf "%d%% dead" (int_of_float (dead_fraction *. 100.))
      in
      series_for config ~label ~dead_fraction ~demand_model
        ~policy:Policy.Lesslog)
    [ 0.1; 0.2; 0.3 ]

let fig5 ?(config = default) () = policy_series config ~demand_model:Even
let fig6 ?(config = default) () = dead_series config ~demand_model:Even
let fig7 ?(config = default) () = policy_series config ~demand_model:Locality
let fig8 ?(config = default) () = dead_series config ~demand_model:Locality

(* --- DES m-sweep --------------------------------------------------------- *)

module Des_sim = Lesslog_des.Des_sim
module Histogram = Lesslog_metrics.Histogram

type des_point = {
  des_m : int;
  nodes : int;
  events : int;
  secs : float;
  events_per_sec : float;
  served : int;
  faults : int;
  replicas : int;
  messages : int;
  p50_latency : float;
  p99_latency : float;
  mean_hops : float;
}

let des_point ~m ~rate_per_node ~duration ~capacity ~seed =
  let params = Params.create ~m () in
  let cluster = Cluster.create params in
  (match Ops.insert cluster ~key:hot_file with
  | [] -> invalid_arg "Experiments.des_point: empty system"
  | _ -> ());
  let status = Cluster.status cluster in
  let nodes = Status_word.live_count status in
  let total = rate_per_node *. float_of_int nodes in
  let demand = Demand.uniform status ~total in
  let tag = Printf.sprintf "%d|des|%d" seed m in
  let rng = Rng.create ~seed:(Lesslog_hash.Fnv.hash63 tag land 0x3FFFFFFF) in
  let config = { Des_sim.default_config with capacity } in
  let t0 = Sys.time () in
  let r = Des_sim.run ~config ~rng ~cluster ~key:hot_file ~demand ~duration () in
  let secs = Sys.time () -. t0 in
  let q h p = if Histogram.count h = 0 then 0.0 else Histogram.quantile h p in
  {
    des_m = m;
    nodes;
    events = r.Des_sim.events;
    secs;
    events_per_sec =
      (if secs > 0.0 then float_of_int r.Des_sim.events /. secs else 0.0);
    served = r.Des_sim.served;
    faults = r.Des_sim.faults;
    replicas = r.Des_sim.replicas_created;
    messages = r.Des_sim.messages;
    p50_latency = q r.Des_sim.latencies 0.5;
    p99_latency = q r.Des_sim.latencies 0.99;
    mean_hops = Histogram.mean r.Des_sim.hops;
  }

let des_sweep ?(ms = [ 10; 11; 12; 13; 14; 15; 16 ]) ?(rate_per_node = 2.0)
    ?(duration = 5.0) ?(capacity = 100.0) ?(seed = 42) () =
  List.map
    (fun m -> des_point ~m ~rate_per_node ~duration ~capacity ~seed)
    ms

let render_des_sweep points =
  let header =
    [ "m"; "nodes"; "events"; "ev/s"; "served"; "faults"; "replicas";
      "p50 lat"; "p99 lat"; "hops" ]
  in
  let rows =
    List.map
      (fun p ->
        [
          string_of_int p.des_m;
          string_of_int p.nodes;
          string_of_int p.events;
          Printf.sprintf "%.3g" p.events_per_sec;
          string_of_int p.served;
          string_of_int p.faults;
          string_of_int p.replicas;
          Printf.sprintf "%.4f" p.p50_latency;
          Printf.sprintf "%.4f" p.p99_latency;
          Printf.sprintf "%.2f" p.mean_hops;
        ])
      points
  in
  Lesslog_report.Table.render ~header rows

let render ~title ~x_label ~y_label series =
  String.concat "\n"
    [
      title;
      String.make (String.length title) '=';
      Lesslog_report.Table.of_series ~x_label series;
      "";
      Lesslog_report.Ascii_plot.render ~x_label ~y_label series;
    ]

(* --- S2: domain-parallel sharded DES (Pdes_sim) ------------------------ *)

module Pdes_sim = Lesslog_des.Pdes_sim

type pdes_point = {
  pdes_m : int;
  pdes_b : int;
  pdes_domains : int;
  pdes_nodes : int;
  pdes_events : int;
  pdes_secs : float;
  pdes_events_per_sec : float;
  pdes_served : int;
  pdes_faults : int;
  pdes_migrations : int;
  pdes_replicas_end : int;
  pdes_oracle_replicas : float;
  pdes_messages : int;
  pdes_cross_sends : int;
  pdes_epochs : int;
  pdes_phases : int;
  pdes_digest : int;
  pdes_p50_latency : float;
  pdes_p99_latency : float;
}

let pdes_oracle_replicas ~total_rate ~capacity =
  if capacity <= 0.0 then
    invalid_arg "Experiments.pdes_oracle_replicas: capacity must be positive";
  Float.max 1.0 (total_rate /. capacity)

let pdes_point ?(b = 2) ?(domains = 1) ?(fuse = true) ?faults ~m ~rate_per_node
    ~duration ~capacity ~seed () =
  let params = Params.create ~b ~m () in
  let status = Status_word.create params ~initially_live:true in
  let nodes = Status_word.live_count status in
  let total = rate_per_node *. float_of_int nodes in
  let demand = Demand.uniform status ~total in
  let tag = Printf.sprintf "%d|pdes|%d" seed m in
  let run_seed = Lesslog_hash.Fnv.hash63 tag land 0x3FFFFFFF in
  let config = { Pdes_sim.default_config with capacity } in
  let t0 = Sys.time () in
  let r =
    Pdes_sim.run ~config ?faults ~domains ~fuse ~seed:run_seed ~params
      ~key:hot_file ~demand ~duration ()
  in
  let secs = Sys.time () -. t0 in
  let q h p = if Histogram.count h = 0 then 0.0 else Histogram.quantile h p in
  {
    pdes_m = m;
    pdes_b = b;
    pdes_domains = domains;
    pdes_nodes = nodes;
    pdes_events = r.Pdes_sim.events;
    pdes_secs = secs;
    pdes_events_per_sec =
      (if secs > 0.0 then float_of_int r.Pdes_sim.events /. secs else 0.0);
    pdes_served = r.Pdes_sim.served;
    pdes_faults = r.Pdes_sim.faults;
    pdes_migrations = r.Pdes_sim.migrations;
    pdes_replicas_end = r.Pdes_sim.replicas_end;
    pdes_oracle_replicas = pdes_oracle_replicas ~total_rate:total ~capacity;
    pdes_messages = r.Pdes_sim.messages;
    pdes_cross_sends = r.Pdes_sim.cross_sends;
    pdes_epochs = r.Pdes_sim.epochs;
    pdes_phases = r.Pdes_sim.phases;
    pdes_digest = r.Pdes_sim.digest;
    pdes_p50_latency = q r.Pdes_sim.latencies 0.5;
    pdes_p99_latency = q r.Pdes_sim.latencies 0.99;
  }

(* Churn-heavy row: a generated fault plan (crashes with restarts plus a
   loss burst, no partitions) replayed through the sharded simulator's
   barrier globals. The plan is derived from its own seed tag, so the
   same row is reproducible at any domain count. *)
let pdes_fault_point ?(b = 2) ?(domains = 1) ?(fuse = true) ~m ~rate_per_node
    ~duration ~capacity ~seed () =
  let params = Params.create ~b ~m () in
  let status = Status_word.create params ~initially_live:true in
  let tag = Printf.sprintf "%d|pdesfault|%d" seed m in
  let rng = Rng.create ~seed:(Lesslog_hash.Fnv.hash63 tag land 0x3FFFFFFF) in
  let live = Status_word.live_pids status in
  let crash_fraction =
    Float.min 0.25 (8.0 /. float_of_int (List.length live))
  in
  let faults =
    Lesslog_workload.Faults.generate ~rng ~live ~duration ~crash_fraction
      ~restart_fraction:0.5 ~bursts:2 ~burst_loss:0.3 ~partitions:0 ()
  in
  pdes_point ~b ~domains ~fuse ~faults ~m ~rate_per_node ~duration ~capacity
    ~seed ()

let pdes_sweep ?(ms = [ 10; 11; 12; 13; 14; 15; 16 ]) ?(b = 2) ?(domains = 1)
    ?(rate_per_node = 2.0) ?(duration = 5.0) ?(capacity = 100.0) ?(seed = 42)
    () =
  List.map
    (fun m -> pdes_point ~b ~domains ~m ~rate_per_node ~duration ~capacity ~seed ())
    ms

(* --- Adaptive replication under time-varying demand --------------------- *)

module Rf_policy = Lesslog_policy.Rf_policy
module Catalog = Lesslog_workload.Catalog
module Multi_balance = Lesslog_flow.Multi_balance

type demand_class = { class_files : int; class_rate : float }

(* Per-class mean-field steady state: each of a class's [m_c] files needs
   enough copies to absorb its share [R_c /. m_c] at [capacity] per copy,
   never below the one copy insertion guarantees — so the population
   settles near [sum_c m_c *. max 1 (R_c /. (m_c *. capacity))]. The
   single-class instance with m_c = 1 degenerates to the PR 7 oracle
   [max 1 (R /. capacity)]. *)
let adaptive_oracle_replicas ~classes ~capacity =
  if capacity <= 0.0 then
    invalid_arg "Experiments.adaptive_oracle_replicas: capacity must be positive";
  List.fold_left
    (fun acc { class_files; class_rate } ->
      if class_files <= 0 then acc
      else
        let files = float_of_int class_files in
        acc +. (files *. Float.max 1.0 (class_rate /. (files *. capacity))))
    0.0 classes

(* Fluid loss bound: [replicas] copies serve at most [replicas *.
   capacity] requests/s, so at least [1 - replicas *. capacity /. rate]
   of the offered load overflows. An upper bound on the steady-state
   loss fraction — zero once the population reaches the oracle. *)
let adaptive_oracle_loss ~total_rate ~replicas ~capacity =
  if total_rate <= 0.0 then 0.0
  else Float.max 0.0 (1.0 -. (replicas *. capacity /. total_rate))

type adaptive_point = {
  ad_label : string;
  ad_m : int;
  ad_rate : float;
  ad_requests : int;
  ad_served : int;
  ad_faults : int;
  ad_loss : float;
  ad_replicas_end : int;
  ad_rf_end : int;
  ad_oracle_replicas : float;
  ad_oracle_loss : float;
  ad_digest : int;
  ad_events : int;
  ad_secs : float;
}

let adaptive_policy ?config ~params ~capacity () =
  let config =
    Option.value config
      ~default:
        {
          Rf_policy.default_config with
          Rf_policy.interval = 0.25;
          rf_max = Params.space params;
          capacity = Some capacity;
        }
  in
  Rf_policy.create ~config
    ~rf0:(min (Params.subtree_count params) config.Rf_policy.rf_max)
    ~nodes:(Params.space params) ~files:1 ()

let adaptive_point ?(b = 2) ?(domains = 1) ?policy_config ~dynamic ~m ~rate
    ~duration ~capacity ~seed () =
  let params = Params.create ~b ~m () in
  let status = Status_word.create params ~initially_live:true in
  let demand = Demand.uniform status ~total:rate in
  let tag = Printf.sprintf "%d|adaptive|%d|%g|%b" seed m rate dynamic in
  let run_seed = Lesslog_hash.Fnv.hash63 tag land 0x3FFFFFFF in
  let policy =
    if dynamic then Some (adaptive_policy ?config:policy_config ~params ~capacity ())
    else None
  in
  let config = { Pdes_sim.default_config with capacity } in
  let t0 = Sys.time () in
  let r =
    Pdes_sim.run ~config ?policy ~domains ~seed:run_seed ~params ~key:hot_file
      ~demand ~duration ()
  in
  let secs = Sys.time () -. t0 in
  {
    ad_label = (if dynamic then "dynamic-rf" else "lesslog");
    ad_m = m;
    ad_rate = rate;
    ad_requests = r.Pdes_sim.requests;
    ad_served = r.Pdes_sim.served;
    ad_faults = r.Pdes_sim.faults;
    ad_loss =
      (if r.Pdes_sim.requests = 0 then 0.0
       else float_of_int r.Pdes_sim.faults /. float_of_int r.Pdes_sim.requests);
    ad_replicas_end = r.Pdes_sim.replicas_end;
    ad_rf_end =
      (match policy with Some p -> Rf_policy.rf p ~file:0 | None -> 0);
    ad_oracle_replicas =
      adaptive_oracle_replicas
        ~classes:[ { class_files = 1; class_rate = rate } ]
        ~capacity;
    ad_oracle_loss =
      adaptive_oracle_loss ~total_rate:rate
        ~replicas:(float_of_int r.Pdes_sim.replicas_end) ~capacity;
    ad_digest = r.Pdes_sim.digest;
    ad_events = r.Pdes_sim.events;
    ad_secs = secs;
  }

let adaptive_sweep ?(b = 2) ?(domains = 1) ?(m = 10) ?(duration = 8.0)
    ?(capacity = 100.0) ?(seed = 42) ?(rates = [ 500.0; 1000.0; 2000.0 ]) () =
  List.concat_map
    (fun rate ->
      [
        adaptive_point ~b ~domains ~dynamic:false ~m ~rate ~duration ~capacity
          ~seed ();
        adaptive_point ~b ~domains ~dynamic:true ~m ~rate ~duration ~capacity
          ~seed ();
      ])
    rates

let render_adaptive points =
  let header =
    [ "policy"; "req/s"; "requests"; "served"; "loss"; "repl"; "rf";
      "oracle"; "oracle loss" ]
  in
  let rows =
    List.map
      (fun p ->
        [
          p.ad_label;
          Printf.sprintf "%.0f" p.ad_rate;
          string_of_int p.ad_requests;
          string_of_int p.ad_served;
          Printf.sprintf "%.4f" p.ad_loss;
          string_of_int p.ad_replicas_end;
          string_of_int p.ad_rf_end;
          Printf.sprintf "%.1f" p.ad_oracle_replicas;
          Printf.sprintf "%.4f" p.ad_oracle_loss;
        ])
      points
  in
  Lesslog_report.Table.render ~header rows

(* --- Adaptive timeline: multi-file hot/warm/cold vs the fluid solver --- *)

type adaptive_step = {
  st_i : int;
  st_total : float;
  st_hot : string;
  st_fluid_replicas : int;
  st_rf_replicas : int;
  st_oracle : float;
}

let adaptive_timeline ?(m = 8) ?(capacity = 100.0) ?(seed = 42) ?(files = 8)
    ?(intervals = 12) ?(shift_every = 4) ?(flash_factor = 25.0) () =
  let params = Params.create ~m () in
  let status = Status_word.create params ~initially_live:true in
  let tag s = Lesslog_hash.Fnv.hash63 s land 0x3FFFFFFF in
  let rng = Rng.create ~seed:(tag (Printf.sprintf "%d|adtl" seed)) in
  let total = 4.0 *. capacity in
  let flash =
    {
      Catalog.rank = files - 1;
      factor = flash_factor;
      from_i = intervals / 2;
      until_i = min intervals ((intervals / 2) + 2);
    }
  in
  let tl =
    Catalog.timeline ~classes:Catalog.default_classes ~shift_every
      ~flashes:[ flash ] status ~rng ~files ~total ~spread:Catalog.Uniform
      ~intervals ~interval:1.0
  in
  (* Stable file identity for the policy: the catalogue re-deals demand
     over the same names at a popularity shift, so index by name, not by
     the entry's position in the current step. *)
  let name_idx = Hashtbl.create files in
  List.iteri
    (fun f (name, _) -> Hashtbl.replace name_idx name f)
    (Catalog.files (Catalog.step tl ~i:0));
  let pconfig =
    {
      Rf_policy.default_config with
      Rf_policy.interval = Catalog.interval tl;
      rf_max = Params.space params;
      capacity = Some capacity;
    }
  in
  let policy =
    Rf_policy.create ~config:pconfig ~nodes:(Params.space params) ~files ()
  in
  List.init intervals (fun i ->
      let entries = Catalog.files (Catalog.step tl ~i) in
      (* Fluid side: a fresh cluster balanced against this interval's
         catalogue — the steady state an omniscient balancer reaches. *)
      let cluster = Cluster.create params in
      List.iter (fun (k, _) -> ignore (Ops.insert cluster ~key:k)) entries;
      let frng = Rng.create ~seed:(tag (Printf.sprintf "%d|adtl|%d" seed i)) in
      let _ =
        Multi_balance.run ~rng:frng ~cluster ~catalog:entries ~capacity
          ~policy:Policy.Lesslog ()
      in
      let fluid =
        List.fold_left
          (fun acc (k, _) -> acc + Cluster.total_copies cluster ~key:k)
          0 entries
      in
      (* Policy side: synthesize the interval's access log from the
         demand (expected accesses and accessing-origin counts), close
         the window, read off the replica factors. *)
      List.iter
        (fun (name, d) ->
          let f = Hashtbl.find name_idx name in
          let ac =
            int_of_float
              (Float.round (Demand.total d *. Catalog.interval tl))
          in
          let dnc =
            Status_word.fold_live status ~init:0 ~f:(fun acc p ->
                if Demand.rate d p > 0.0 then acc + 1 else acc)
          in
          Rf_policy.note policy ~file:f ~ac ~dnc)
        entries;
      ignore (Rf_policy.end_interval policy);
      let rf_total = ref 0 in
      for f = 0 to files - 1 do
        rf_total := !rf_total + Rf_policy.rf policy ~file:f
      done;
      let hot =
        List.fold_left
          (fun (bk, br) (k, d) ->
            if Demand.total d > br then (k, Demand.total d) else (bk, br))
          ("", neg_infinity) entries
        |> fst
      in
      {
        st_i = i;
        st_total = Catalog.total_demand (Catalog.step tl ~i);
        st_hot = hot;
        st_fluid_replicas = fluid;
        st_rf_replicas = !rf_total;
        st_oracle =
          adaptive_oracle_replicas
            ~classes:
              (List.map
                 (fun (_, d) ->
                   { class_files = 1; class_rate = Demand.total d })
                 entries)
            ~capacity;
      })

let render_adaptive_timeline steps =
  let header =
    [ "interval"; "total req/s"; "hot file"; "fluid repl"; "rf repl";
      "oracle" ]
  in
  let rows =
    List.map
      (fun s ->
        [
          string_of_int s.st_i;
          Printf.sprintf "%.0f" s.st_total;
          s.st_hot;
          string_of_int s.st_fluid_replicas;
          string_of_int s.st_rf_replicas;
          Printf.sprintf "%.1f" s.st_oracle;
        ])
      steps
  in
  Lesslog_report.Table.render ~header rows

let render_pdes_sweep points =
  let header =
    [ "m"; "shards"; "nodes"; "events"; "ev/s"; "served"; "faults"; "migr";
      "repl"; "oracle"; "x-send"; "epochs"; "p99 lat" ]
  in
  let rows =
    List.map
      (fun p ->
        [
          string_of_int p.pdes_m;
          string_of_int (1 lsl p.pdes_b);
          string_of_int p.pdes_nodes;
          string_of_int p.pdes_events;
          Printf.sprintf "%.3g" p.pdes_events_per_sec;
          string_of_int p.pdes_served;
          string_of_int p.pdes_faults;
          string_of_int p.pdes_migrations;
          string_of_int p.pdes_replicas_end;
          Printf.sprintf "%.1f" p.pdes_oracle_replicas;
          string_of_int p.pdes_cross_sends;
          string_of_int p.pdes_epochs;
          Printf.sprintf "%.4f" p.pdes_p99_latency;
        ])
      points
  in
  Lesslog_report.Table.render ~header rows

(* --- Erasure-coded cold tier: storage amplification vs full replication --- *)

module Scenario = Lesslog_workload.Scenario

type coldtier_point = {
  ct_label : string;
  ct_requests : int;
  ct_served : int;
  ct_faults : int;
  ct_loss : float;
  ct_demotions : int;
  ct_promotions : int;
  ct_fragment_repairs : int;
  ct_coded_serves : int;
  ct_mean_bytes : float;
  ct_amplification : float;
  ct_bytes_moved : int;
  ct_repair_bytes : int;
  ct_bytes_end : int;
  ct_lost : bool;
  ct_secs : float;
}

let coldtier_point ?(m = 10) ?(capacity = 100.0) ?(seed = 42) ?(peak = 500.0)
    ?(peak_duration = 1.5) ?(calm_duration = 12.0) ?(code_k = 10)
    ?(code_r = 4) ?(file_bytes = 1 lsl 20) ?(rf_min = 3) ~hybrid () =
  let params = Params.create ~m () in
  let cluster = Cluster.create params in
  let inserted =
    match Ops.insert cluster ~key:hot_file with
    | [] -> invalid_arg "Experiments.coldtier_point: empty system"
    | ps -> List.map Pid.to_int ps
  in
  let status = Cluster.status cluster in
  (* The adaptive lifecycle: a flash crowd, a long idle stretch in which
     the key goes Cold, then a re-heat that must be served back out of
     whatever the tier kept. *)
  let scenario =
    Scenario.of_phases
      [
        {
          Scenario.demand = Demand.uniform status ~total:peak;
          duration = peak_duration;
        };
        {
          Scenario.demand = Demand.uniform status ~total:0.0;
          duration = calm_duration;
        };
        {
          Scenario.demand = Demand.uniform status ~total:peak;
          duration = peak_duration;
        };
      ]
  in
  let tag = Printf.sprintf "%d|coldtier|%d|%b" seed m hybrid in
  let rng = Rng.create ~seed:(Lesslog_hash.Fnv.hash63 tag land 0x3FFFFFFF) in
  let pconfig =
    {
      Rf_policy.default_config with
      Rf_policy.interval = 0.25;
      rf_min;
      rf_max = Params.space params;
      capacity = Some capacity;
    }
  in
  let policy =
    Rf_policy.create ~config:pconfig ~rf0:rf_min
      ~nodes:(Params.space params) ~files:1 ()
  in
  let cold_tier =
    {
      Des_sim.code_k;
      code_r;
      file_bytes;
      (* The full-replication baseline runs the identical policy and
         byte ledger with demotion disarmed — the same accounting, so
         the amplification ratio compares like with like. *)
      demote_after = (if hybrid then 2 else max_int);
    }
  in
  (* Fail two fragment-holding nodes mid-calm: low ascending PIDs carry
     fragments (and, in the baseline, policy-filled copies), so both
     runs pay a failure-triggered repair — the hybrid's in fragment
     rebuilds, the baseline's in relocated full copies. *)
  let fail_at = peak_duration +. (0.6 *. calm_duration) in
  let victims =
    List.filteri
      (fun i _ -> i < 2)
      (List.filter (fun i -> not (List.mem i inserted)) [ 0; 1; 2; 3 ])
  in
  let churn =
    List.mapi
      (fun i v ->
        {
          Des_sim.at = fail_at +. (0.1 *. float_of_int i);
          action = Des_sim.Fail (Pid.unsafe_of_int v);
        })
      victims
  in
  let config = { Des_sim.default_config with capacity } in
  let t0 = Sys.time () in
  let r =
    Des_sim.run_scenario ~config ~churn ~policy ~cold_tier ~rng ~cluster
      ~key:hot_file ~scenario ()
  in
  let secs = Sys.time () -. t0 in
  let c =
    match r.Des_sim.cold with
    | Some c -> c
    | None -> invalid_arg "Experiments.coldtier_point: no cold ledger"
  in
  let requests = r.Des_sim.served + r.Des_sim.faults in
  {
    ct_label = (if hybrid then "hybrid" else "full");
    ct_requests = requests;
    ct_served = r.Des_sim.served;
    ct_faults = r.Des_sim.faults;
    ct_loss =
      (if requests = 0 then 0.0
       else float_of_int r.Des_sim.faults /. float_of_int requests);
    ct_demotions = c.Des_sim.demotions;
    ct_promotions = c.Des_sim.promotions;
    ct_fragment_repairs = c.Des_sim.fragment_repairs;
    ct_coded_serves = c.Des_sim.coded_serves;
    ct_mean_bytes = c.Des_sim.mean_bytes_stored;
    ct_amplification = c.Des_sim.mean_bytes_stored /. float_of_int file_bytes;
    ct_bytes_moved = c.Des_sim.bytes_moved;
    ct_repair_bytes = c.Des_sim.repair_bytes;
    ct_bytes_end = c.Des_sim.bytes_stored_end;
    ct_lost = c.Des_sim.lost_cold;
    ct_secs = secs;
  }

let coldtier_run ?m ?capacity ?seed ?peak ?peak_duration ?calm_duration
    ?code_k ?code_r ?file_bytes ?rf_min () =
  [
    coldtier_point ?m ?capacity ?seed ?peak ?peak_duration ?calm_duration
      ?code_k ?code_r ?file_bytes ?rf_min ~hybrid:false ();
    coldtier_point ?m ?capacity ?seed ?peak ?peak_duration ?calm_duration
      ?code_k ?code_r ?file_bytes ?rf_min ~hybrid:true ();
  ]

let render_coldtier points =
  let header =
    [ "tier"; "requests"; "served"; "loss"; "demote"; "promote"; "repairs";
      "coded srv"; "mean MiB"; "amp"; "moved MiB"; "repair MiB" ]
  in
  let mib b = float_of_int b /. (1024.0 *. 1024.0) in
  let rows =
    List.map
      (fun p ->
        [
          p.ct_label;
          string_of_int p.ct_requests;
          string_of_int p.ct_served;
          Printf.sprintf "%.4f" p.ct_loss;
          string_of_int p.ct_demotions;
          string_of_int p.ct_promotions;
          string_of_int p.ct_fragment_repairs;
          string_of_int p.ct_coded_serves;
          Printf.sprintf "%.2f" (p.ct_mean_bytes /. (1024.0 *. 1024.0));
          Printf.sprintf "%.2f" p.ct_amplification;
          Printf.sprintf "%.2f" (mib p.ct_bytes_moved);
          Printf.sprintf "%.2f" (mib p.ct_repair_bytes);
        ])
      points
  in
  Lesslog_report.Table.render ~header rows

let coldtier_pdes ?(m = 8) ?(b = 2) ?(domains = 1) ?(rate = 8.0)
    ?(duration = 6.0) ?(seed = 7) () =
  let params = Params.create ~b ~m () in
  let status = Status_word.create params ~initially_live:true in
  let demand = Demand.uniform status ~total:rate in
  let pconfig =
    {
      Rf_policy.default_config with
      Rf_policy.interval = 0.25;
      rf_max = Params.space params;
      capacity = Some 100.0;
    }
  in
  let policy =
    Rf_policy.create ~config:pconfig ~rf0:(Params.subtree_count params)
      ~nodes:(Params.space params) ~files:1 ()
  in
  (* A trickle of demand: empty analysis intervals classify Cold (the
     tier demotes), bursts re-heat the key — several full
     demote/serve-coded/promote cycles per run. *)
  let cold_tier =
    { Des_sim.default_cold_tier with Des_sim.demote_after = 1 }
  in
  Pdes_sim.run ~policy ~cold_tier ~domains ~seed ~params ~key:"cold/object"
    ~demand ~duration ()
