(* Integration tests: the experiment harness must reproduce the *shapes*
   of the paper's figures (who wins, by roughly what factor), which is the
   reproduction criterion EXPERIMENTS.md reports against. *)

module E = Lesslog_harness.Experiments
module A = Lesslog_harness.Ablations
module Series = Lesslog_report.Series

let config =
  {
    E.quick with
    E.m = 8;
    E.rates = [ 1000.0; 2000.0; 4000.0; 8000.0 ];
    E.trials = 2;
  }

let series_by_label series label =
  match List.find_opt (fun s -> Series.label s = label) series with
  | Some s -> s
  | None -> Alcotest.failf "missing series %s" label

let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let pointwise_le ?(slack = 1.0) a b =
  Array.for_all2 (fun x y -> x <= (y *. slack) +. 1e-9) (Series.ys a) (Series.ys b)

(* --- Figure 5: even load ------------------------------------------------ *)

let fig5 = lazy (E.fig5 ~config ())

let test_fig5_ordering () =
  let s = Lazy.force fig5 in
  let log_based = series_by_label s "log-based"
  and lesslog = series_by_label s "lesslog"
  and random = series_by_label s "random" in
  Alcotest.(check bool) "log-based <= lesslog" true
    (pointwise_le log_based lesslog);
  Alcotest.(check bool) "lesslog well below random" true
    (mean (Series.ys random) > 2.0 *. mean (Series.ys lesslog))

let test_fig5_monotone_demand () =
  let s = Lazy.force fig5 in
  let lesslog = Series.ys (series_by_label s "lesslog") in
  let ok = ref true in
  for i = 1 to Array.length lesslog - 1 do
    if lesslog.(i) < lesslog.(i - 1) then ok := false
  done;
  Alcotest.(check bool) "replicas grow with demand" true !ok

(* --- Figure 6: dead nodes, even load ------------------------------------ *)

let test_fig6_dead_fractions_close () =
  let s = E.fig6 ~config () in
  let d10 = mean (Series.ys (series_by_label s "10% dead")) in
  let d30 = mean (Series.ys (series_by_label s "30% dead")) in
  (* The paper: "a similar number of replicas are created in all three
     configurations", with 30% drifting higher. *)
  Alcotest.(check bool)
    (Printf.sprintf "same regime (10%%: %.0f, 30%%: %.0f)" d10 d30)
    true
    (d30 >= d10 *. 0.8 && d30 <= d10 *. 3.0)

(* --- Figure 7: locality -------------------------------------------------- *)

let test_fig7_ordering () =
  let s = E.fig7 ~config () in
  let log_based = series_by_label s "log-based"
  and lesslog = series_by_label s "lesslog"
  and random = series_by_label s "random" in
  (* LessLog uses slightly more replicas than the log-based oracle under
     locality, and far fewer than random. *)
  Alcotest.(check bool) "log-based <= lesslog (10% slack)" true
    (pointwise_le ~slack:1.1 log_based lesslog);
  Alcotest.(check bool) "lesslog well below random" true
    (mean (Series.ys random) > 1.5 *. mean (Series.ys lesslog))

(* --- Figure 8: locality + dead nodes -------------------------------------- *)

let test_fig8_same_regime () =
  let s = E.fig8 ~config () in
  let d10 = mean (Series.ys (series_by_label s "10% dead")) in
  let d30 = mean (Series.ys (series_by_label s "30% dead")) in
  Alcotest.(check bool)
    (Printf.sprintf "same regime (10%%: %.0f, 30%%: %.0f)" d10 d30)
    true
    (d30 >= d10 *. 0.7 && d30 <= d10 *. 3.0)

(* --- Ablations -------------------------------------------------------------- *)

let test_hops_logarithmic () =
  let s = A.hops ~ms:[ 4; 6; 8; 10 ] ~samples:400 () in
  List.iter
    (fun series ->
      Array.iteri
        (fun i m ->
          let hops = (Series.ys series).(i) in
          Alcotest.(check bool)
            (Printf.sprintf "%s at m=%.0f: %.2f hops" (Series.label series) m hops)
            true
            (hops <= 2.0 *. m))
        (Series.xs series))
    s;
  (* More nodes, more hops. *)
  let lesslog = Series.ys (series_by_label s "lesslog tree") in
  Alcotest.(check bool) "grows with m" true
    (lesslog.(Array.length lesslog - 1) > lesslog.(0))

let test_eviction_reduces_fleet () =
  let s = A.eviction ~config () in
  let created = series_by_label s "created at peak" in
  let kept = series_by_label s "kept after decay" in
  Alcotest.(check bool) "kept <= created" true (pointwise_le kept created);
  Alcotest.(check bool) "eviction removes a real fraction" true
    (mean (Series.ys kept) < 0.9 *. mean (Series.ys created))

let test_fault_tolerance_improves_with_b () =
  let s = A.fault_tolerance ~m:7 ~files:16 () in
  let rate b = mean (Series.ys (series_by_label s (Printf.sprintf "b=%d" b))) in
  Alcotest.(check bool) "b=1 beats b=0" true (rate 1 < rate 0);
  Alcotest.(check bool) "b=2 no worse than b=1" true (rate 2 <= rate 1);
  Alcotest.(check (float 1e-9)) "b=3 never faults here" 0.0 (rate 3)

let test_hops_includes_all_substrates () =
  let s = A.hops ~ms:[ 4; 8 ] ~samples:200 () in
  List.iter
    (fun label -> ignore (series_by_label s label))
    [ "lesslog tree"; "chord fingers"; "pastry prefixes"; "can d=2" ]

let test_update_cost_tracks_copies () =
  let s = A.update_cost ~m:8 ~replica_levels:[ 0; 15; 63 ] () in
  let broadcast = series_by_label s "children-list broadcast" in
  let flood = series_by_label s "naive flood" in
  (* Broadcast cost grows with the copy count but stays under the flood. *)
  let ys = Series.ys broadcast in
  Alcotest.(check bool) "monotone" true (ys.(0) < ys.(2));
  Alcotest.(check bool) "cheaper than flooding" true
    (pointwise_le broadcast flood)

let test_lifecycle_trims_fleet () =
  let o =
    A.eviction_lifecycle ~m:7 ~peak:2000.0 ~calm:100.0 ~peak_duration:15.0
      ~calm_duration:30.0 ()
  in
  Alcotest.(check bool) "created" true (o.A.created > 0);
  Alcotest.(check bool) "evicted" true (o.A.evicted > 0);
  Alcotest.(check int) "no faults" 0 o.A.lifecycle_faults;
  Alcotest.(check bool) "fleet shrank" true
    (float_of_int o.A.final_copies < o.A.peak_copies)

let test_session_churn_stays_available () =
  let outcomes =
    A.session_churn ~m:7 ~duration:30.0 ~mean_sessions:[ 30.0 ] ()
  in
  List.iter
    (fun (o : A.session_outcome) ->
      Alcotest.(check bool) "available" true (o.A.availability > 0.95);
      Alcotest.(check bool) "control traffic accounted" true
        (o.A.control_messages > 0))
    outcomes

let test_fluid_vs_des_same_regime () =
  let s = A.fluid_vs_des ~rates:[ 1000.0; 2000.0 ] ~duration:15.0 () in
  let fluid = series_by_label s "fluid solver" in
  let des = series_by_label s "event-driven" in
  Array.iteri
    (fun i f ->
      let d = (Series.ys des).(i) in
      Alcotest.(check bool)
        (Printf.sprintf "point %d: fluid %.0f vs des %.0f" i f d)
        true
        (d >= f && d <= 4.0 *. f))
    (Series.ys fluid)

(* --- m-sweep ---------------------------------------------------------------- *)

let test_des_sweep_smoke () =
  let points =
    E.des_sweep ~ms:[ 6; 8 ] ~rate_per_node:1.0 ~duration:1.0 ~capacity:50.0
      ~seed:7 ()
  in
  Alcotest.(check int) "one point per m" 2 (List.length points);
  List.iter
    (fun (p : E.des_point) ->
      Alcotest.(check int) "nodes = 2^m" (1 lsl p.E.des_m) p.E.nodes;
      Alcotest.(check bool) "events executed" true (p.E.events > 0);
      Alcotest.(check bool) "requests served" true (p.E.served > 0);
      Alcotest.(check bool) "quantiles ordered" true
        (p.E.p50_latency <= p.E.p99_latency);
      Alcotest.(check bool) "positive throughput" true (p.E.events_per_sec > 0.0))
    points;
  (* Demand scales with population, so the larger exponent serves more. *)
  match points with
  | [ small; big ] ->
      Alcotest.(check bool) "bigger system serves more" true
        (big.E.served > small.E.served)
  | _ -> Alcotest.fail "expected two points"

let test_churn_availability_high () =
  let outcomes = A.churn ~m:7 ~duration:20.0 ~events_per_min:[ 0.0; 30.0 ] () in
  List.iter
    (fun o ->
      Alcotest.(check bool)
        (Printf.sprintf "availability %.4f at %.0f events/min" o.A.availability
           o.A.events_per_min)
        true
        (o.A.availability > 0.95))
    outcomes

let () =
  Alcotest.run "harness"
    [
      ( "figure shapes",
        [
          Alcotest.test_case "fig5 ordering" `Slow test_fig5_ordering;
          Alcotest.test_case "fig5 monotone" `Slow test_fig5_monotone_demand;
          Alcotest.test_case "fig6 dead fractions" `Slow
            test_fig6_dead_fractions_close;
          Alcotest.test_case "fig7 ordering" `Slow test_fig7_ordering;
          Alcotest.test_case "fig8 same regime" `Slow test_fig8_same_regime;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "hops O(log N)" `Slow test_hops_logarithmic;
          Alcotest.test_case "eviction reduces fleet" `Slow
            test_eviction_reduces_fleet;
          Alcotest.test_case "fault tolerance vs b" `Slow
            test_fault_tolerance_improves_with_b;
          Alcotest.test_case "fluid vs des" `Slow test_fluid_vs_des_same_regime;
          Alcotest.test_case "churn availability" `Slow
            test_churn_availability_high;
          Alcotest.test_case "hops covers all substrates" `Slow
            test_hops_includes_all_substrates;
          Alcotest.test_case "update cost tracks copies" `Slow
            test_update_cost_tracks_copies;
          Alcotest.test_case "lifecycle trims fleet" `Slow
            test_lifecycle_trims_fleet;
          Alcotest.test_case "session churn availability" `Slow
            test_session_churn_stays_available;
        ] );
      ( "m-sweep",
        [ Alcotest.test_case "des sweep smoke" `Slow test_des_sweep_smoke ] );
    ]
