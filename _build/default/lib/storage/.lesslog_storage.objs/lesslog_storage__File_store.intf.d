lib/storage/file_store.mli: Access_counter Format
