examples/document_store.ml: Array Float Format Lesslog Lesslog_flow Lesslog_fs Lesslog_id Lesslog_membership Lesslog_prng Lesslog_workload List Pid Printf
