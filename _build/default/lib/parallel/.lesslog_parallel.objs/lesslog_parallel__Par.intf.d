lib/parallel/par.mli:
