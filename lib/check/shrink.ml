(* Delta debugging over schedule steps: drop-chunk passes with halving
   chunk sizes, then drop-single to a local fixpoint. The predicate
   re-runs the candidate deterministically, so "still fails" means the
   same oracle fires again — classic ddmin specialized to one-level
   deletion (steps are independent events; the interpreters in Schedule
   turn impossible leftovers into no-ops). *)

type stats = { runs : int; kept : int; dropped : int }

let remove_chunk arr start len =
  let n = Array.length arr in
  let out = Array.make (n - len) arr.(0) in
  Array.blit arr 0 out 0 start;
  Array.blit arr (start + len) out start (n - start - len);
  out

let minimize ~pred steps =
  match steps with
  | [] -> (steps, { runs = 0; kept = 0; dropped = 0 })
  | _ ->
      let runs = ref 0 in
      let test arr =
        incr runs;
        pred (Array.to_list arr)
      in
      let current = ref (Array.of_list steps) in
      let chunk = ref (max 1 (Array.length !current / 2)) in
      let continue = ref true in
      while !continue do
        (* One pass at the current chunk size: try deleting each chunk,
           restarting the scan position after a successful deletion. *)
        let progressed = ref false in
        let i = ref 0 in
        while !i * !chunk < Array.length !current do
          let n = Array.length !current in
          let start = !i * !chunk in
          let len = min !chunk (n - start) in
          if len = n then incr i (* never test the empty schedule twice *)
          else begin
            let candidate = remove_chunk !current start len in
            if Array.length candidate > 0 && test candidate then begin
              current := candidate;
              progressed := true
              (* keep [i]: the next chunk slid into this position *)
            end
            else incr i
          end
        done;
        if !chunk = 1 then begin
          (* At granularity one, a pass with no progress is the fixpoint. *)
          if not !progressed then continue := false
        end
        else chunk := max 1 (!chunk / 2)
      done;
      (* The empty schedule is a legitimate minimum when the failure does
         not need any disturbance at all. *)
      let final =
        if test [||] then [] else Array.to_list !current
      in
      ( final,
        {
          runs = !runs;
          kept = List.length final;
          dropped = List.length steps - List.length final;
        } )
