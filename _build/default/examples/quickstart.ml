(* Quickstart: a 16-node LessLog system, end to end.

   Run with: dune exec examples/quickstart.exe *)

open Lesslog_id
module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Self_org = Lesslog.Self_org
module Ptree = Lesslog_ptree.Ptree

let pid = Pid.unsafe_of_int

let show_path r =
  String.concat " -> "
    (List.map (fun p -> Printf.sprintf "P(%d)" (Pid.to_int p)) r.Ops.path)

let () =
  (* A complete 16-node system: m = 4, every PID slot live. *)
  let params = Params.create ~m:4 () in
  let cluster = Cluster.create params in
  Printf.printf "cluster: %d nodes, m = %d\n\n" (Cluster.live_count cluster)
    (Params.m params);

  (* Insert a file. Its target node is psi(key). *)
  let key = "http://example.net/videos/launch.mp4" in
  let targets = Ops.insert cluster ~key in
  let target = List.hd targets in
  Printf.printf "inserted %S\n  -> stored at its target node P(%d)\n\n" key
    (Pid.to_int target);

  (* The lookup tree of the target: every node routes up this tree. *)
  Format.printf "%a@." Ptree.pp (Cluster.tree_of_key cluster key);

  (* Any node can get the file; requests climb the tree. *)
  let origin = pid ((Pid.to_int target + 7) mod 16) in
  let r = Ops.get cluster ~origin ~key in
  Printf.printf "get from P(%d): served by P(%d) in %d hops  [%s]\n\n"
    (Pid.to_int origin)
    (Pid.to_int (Option.get r.Ops.server))
    r.Ops.hops (show_path r);

  (* The target is overloaded: replicate — no logs needed, the placement
     is a bitwise computation on the children list. *)
  let rng = Lesslog_prng.Rng.create ~seed:1 in
  (match Ops.replicate ~rng cluster ~overloaded:target ~key with
  | Some replica ->
      Printf.printf
        "replicated to P(%d) (the child with the most offspring: half the \
         tree now stops there)\n"
        (Pid.to_int replica)
  | None -> print_endline "no replication candidate");
  let r2 = Ops.get cluster ~origin ~key in
  Printf.printf "get from P(%d) again: served by P(%d) in %d hops  [%s]\n\n"
    (Pid.to_int origin)
    (Pid.to_int (Option.get r2.Ops.server))
    r2.Ops.hops (show_path r2);

  (* Updates propagate top-down along children lists. *)
  let u = Ops.update cluster ~key in
  Printf.printf "update: version %d pushed to %d copies with %d messages\n\n"
    u.Ops.version u.Ops.updated u.Ops.messages;

  (* Nodes come and go; the self-organized mechanism keeps files placed. *)
  let leaver = target in
  let stats = Self_org.leave cluster leaver in
  List.iter
    (fun (k, p) ->
      Printf.printf "P(%d) left: %S re-inserted at P(%d)\n" (Pid.to_int leaver)
        k (Pid.to_int p))
    stats.Self_org.reinserted;
  let r3 = Ops.get cluster ~origin ~key in
  Printf.printf "get after departure: served by P(%d) in %d hops  [%s]\n"
    (Pid.to_int (Option.get r3.Ops.server))
    r3.Ops.hops (show_path r3);
  assert (Self_org.integrity_violations cluster = []);
  print_endline "\nintegrity check: OK"
