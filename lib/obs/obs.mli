(** Observability: a process-wide metrics registry and a span-tracing
    sink, both O(1) and allocation-flat on the hot path, so the
    simulators can stay instrumented even at the m = 16 scale-up
    (see ARCHITECTURE.md, "Observability" — the budget is < 5% on the
    [bench des] workload, enforced by [bench/obs_bench.ml]).

    {!Registry} holds named counters, gauges and histogram-backed
    timers. Registration hands back a handle; updates through the handle
    are a field write (counters, gauges) or a streaming-sketch insert
    (timers) — no name lookup on the hot path.

    {!Span} records begin/end spans keyed by request id into a bounded
    ring buffer: when the ring is full the oldest spans are overwritten,
    so memory stays constant however long the run. Completed spans
    export as Chrome [trace_event] JSON (load in [chrome://tracing] or
    Perfetto) and as [SPN] {!Lesslog_trace.Trace.Event.Span} lines. *)

module Registry : sig
  type t

  type counter
  type gauge
  type timer

  val create : unit -> t

  val counter : t -> string -> counter
  (** Register (or re-fetch) the counter named [name]. Idempotent.
      @raise Invalid_argument if [name] is registered as another kind. *)

  val gauge : t -> string -> gauge
  val timer : t -> string -> timer

  val timer_backed : t -> string -> Lesslog_metrics.Histogram.t -> timer
  (** Register a timer whose samples {e are} the given live histogram —
      shared, not copied. For code that already keeps a
      {!Lesslog_metrics.Histogram} on its hot path: the existing inserts
      show up in snapshots with no second sketch insert per sample.
      Re-registering re-points the existing timer at [hist]; {!reset}
      detaches the sharing (the timer gets a fresh empty sketch).
      @raise Invalid_argument if [name] is registered as another kind. *)

  val incr : counter -> unit
  (** O(1): one field write. *)

  val add : counter -> int -> unit
  val value : counter -> int
  val set : gauge -> float -> unit
  val read : gauge -> float

  val observe : timer -> float -> unit
  (** O(1): one {!Lesslog_metrics.Histogram} insert. *)

  val observe_int : timer -> int -> unit

  type snapshot = {
    name : string;
    kind : [ `Counter | `Gauge | `Timer ];
    count : int;  (** Counter value, or timer sample count; 0 for gauges. *)
    value : float;  (** Counter value / gauge value / timer mean. *)
    p50 : float;  (** Timers only; [nan] otherwise. *)
    p99 : float;
    max_v : float;
  }

  val snapshot : t -> snapshot list
  (** Every registered metric, sorted by name. *)

  val reset : t -> unit
  (** Zero counters and gauges, empty timers. Handles stay valid. *)

  val to_json_pairs : t -> (string * float) list
  (** Flat [name -> number] pairs: counters and gauges one pair each,
      timers expand to [name/count], [name/mean], [name/p50], [name/p99]
      and [name/max]. Sorted by name. *)

  val to_json : t -> string
  (** {!to_json_pairs} rendered by {!Lesslog_report.Bench_json}. *)
end

module Span : sig
  type sink

  val create_sink : ?open_capacity:int -> ?capacity:int -> unit -> sink
  (** [capacity] bounds the completed-span ring (default 16384, kept
      modest so the ring stays cache-resident under instrumented runs —
      pass more to retain more history); [open_capacity] bounds the
      in-flight table (default 4096). Both are rounded up to powers of
      two. Storage is flat, off the OCaml heap, and allocated up
      front. *)

  val intern : sink -> string -> int
  (** Register a span name once, up front; the returned index is what
      the hot-path calls take. Interning the same name twice returns the
      same index. *)

  val begin_span : sink -> name:int -> id:int -> origin:int -> at:float -> unit
  (** Open a span for request [id]. If a span for [id]'s slot is already
      open (id collision after wraparound, or a request that never
      resolved), the older one is dropped and counted in {!dropped}. *)

  val set_attempt : sink -> id:int -> attempt:int -> unit
  (** Update the open span's attempt number (RPC retransmission). No-op
      when no span is open for [id]. *)

  val end_span : sink -> id:int -> at:float -> server:int option -> hops:int -> unit
  (** Close the span for [id] and push it onto the completed ring. No-op
      when no span is open for [id] (e.g. already closed by the first of
      two duplicate replies). *)

  val end_span_int : sink -> id:int -> at:float -> server:int -> hops:int -> unit
  (** {!end_span} with the fault case encoded as a negative [server] —
      the allocation-free variant for simulator hot paths. *)

  val emit :
    sink ->
    name:int ->
    id:int ->
    origin:int ->
    at:float ->
    dur:float ->
    server:int option ->
    hops:int ->
    attempt:int ->
    unit
  (** Record a complete span in one call — instant markers ([dur = 0])
      and spans whose interval the caller already knows. Never touches
      the open-span table. *)

  val emit_int :
    sink ->
    name:int ->
    id:int ->
    origin:int ->
    at:float ->
    dur:float ->
    server:int ->
    hops:int ->
    attempt:int ->
    unit
  (** {!emit} with the fault case encoded as a negative [server] — the
      allocation-free variant for simulator hot paths. *)

  val completed : sink -> int
  (** Spans pushed onto the ring over the sink's lifetime (may exceed
      the ring capacity; only the newest [capacity] are retained). *)

  val retained : sink -> int
  val dropped : sink -> int
  (** Open spans discarded by a slot collision before ending. *)

  val open_spans : sink -> int

  val merge_into : into:sink -> sink -> unit
(** Append the source sink's retained spans, oldest first, onto
      [into]'s ring (names re-interned, packed fields preserved bit for
      bit; [into]'s ring bound applies). The source is not modified.
      The parallel simulator gives each shard its own sink and merges
      them in shard-id order at export, so the combined ring — and any
      trace or Chrome export taken from it — is deterministic at any
      domain count. [completed into] grows by the number of spans
      appended (spans the source ring had already overwritten are gone;
      sum [completed] over sources for lifetime totals); [dropped] is
      accumulated. *)

  val iter : sink -> (Lesslog_trace.Trace.Event.t -> unit) -> unit
  (** Retained completed spans, oldest first, as
      {!Lesslog_trace.Trace.Event.Span} events. *)

  val to_events : sink -> Lesslog_trace.Trace.Event.t list

  val to_chrome_json : sink -> string
  (** The retained spans as Chrome [trace_event] JSON (the
      [{"traceEvents": [...]}] object form, complete-event ["ph": "X"]
      records, timestamps in microseconds of simulated time, one track
      per origin node). *)

  val write_chrome : path:string -> sink -> unit
end

type t = { registry : Registry.t; spans : Span.sink }
(** The bundle the simulators take: one registry plus one span sink. *)

val create : ?open_capacity:int -> ?span_capacity:int -> unit -> t
