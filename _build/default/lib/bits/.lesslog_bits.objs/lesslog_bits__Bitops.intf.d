lib/bits/bitops.mli: Format
