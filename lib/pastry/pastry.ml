open Lesslog_id

type t = {
  params : Params.t;
  digit_bits : int;
  rows : int;
  ids : int array;  (* sorted live ids *)
  index_of : (int, int) Hashtbl.t;
  tables : int array array array;  (* node index -> row -> column -> id or -1 *)
  leaves : int array array;  (* node index -> leaf ids, nearest first *)
}

(* Circular numeric distance on the identifier ring. *)
let ring_distance ~space a b =
  let d = abs (a - b) in
  min d (space - d)

let digit t id row =
  (* Row 0 is the most significant digit. *)
  let shift = (t.rows - 1 - row) * t.digit_bits in
  (id lsr shift) land ((1 lsl t.digit_bits) - 1)

let shared_prefix_digits t a b =
  let rec count row =
    if row >= t.rows then t.rows
    else if digit t a row = digit t b row then count (row + 1)
    else row
  in
  count 0

(* The numerically closest node is either the ring successor or the ring
   predecessor of the target: binary-search for the successor and compare
   the two (ties toward the smaller id). *)
let owner_id t target =
  let space = Params.space t.params in
  let n = Array.length t.ids in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.ids.(mid) >= target then hi := mid else lo := mid + 1
  done;
  let succ = t.ids.(!lo mod n) in
  let pred = t.ids.((!lo - 1 + n) mod n) in
  let ds = ring_distance ~space succ target in
  let dp = ring_distance ~space pred target in
  if dp < ds || (dp = ds && pred < succ) then pred else succ

let create ?(digit_bits = 2) ?(leaf_set = 8) params ~live =
  (match live with [] -> invalid_arg "Pastry.create: empty population" | _ -> ());
  if digit_bits < 1 || Params.m params mod digit_bits <> 0 then
    invalid_arg "Pastry.create: digit_bits must divide m";
  let ids =
    List.map Pid.to_int live |> List.sort_uniq compare |> Array.of_list
  in
  let n = Array.length ids in
  let rows = Params.m params / digit_bits in
  let space = Params.space params in
  let index_of = Hashtbl.create n in
  Array.iteri (fun i id -> Hashtbl.replace index_of id i) ids;
  let t =
    {
      params;
      digit_bits;
      rows;
      ids;
      index_of;
      tables = [||];
      leaves = [||];
    }
  in
  let columns = 1 lsl digit_bits in
  (* Ids sharing my first [row] digits with digit [col] at position [row]
     form one contiguous numeric interval; a binary search finds a table
     entry in O(log n), keeping construction near-linear. *)
  let first_id_geq x =
    let lo = ref 0 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if ids.(mid) >= x then hi := mid else lo := mid + 1
    done;
    !lo
  in
  let entry_for me row col =
    if digit t me row = col then me
    else begin
      let low_bits = (rows - 1 - row) * digit_bits in
      let prefix = me lsr (low_bits + digit_bits) in
      let base = ((prefix lsl digit_bits) lor col) lsl low_bits in
      let stop = base + (1 lsl low_bits) in
      let i = first_id_geq base in
      if i < n && ids.(i) < stop && ids.(i) <> me then ids.(i) else -1
    end
  in
  let tables =
    Array.map
      (fun me ->
        Array.init rows (fun row ->
            Array.init columns (fun col -> entry_for me row col)))
      ids
  in
  (* The numerically nearest nodes are adjacent in the sorted id array
     (modulo wrap), so a window of [leaf_set] ids on each side suffices. *)
  let leaves =
    Array.mapi
      (fun i me ->
        let window = ref [] in
        for k = 1 to min leaf_set (n - 1) do
          window := ids.((i + k) mod n) :: ids.(((i - k) mod n + n) mod n) :: !window
        done;
        let sorted =
          List.sort_uniq
            (fun a b ->
              compare
                (ring_distance ~space a me, a)
                (ring_distance ~space b me, b))
            (List.filter (fun id -> id <> me) !window)
        in
        Array.of_list (List.filteri (fun k _ -> k < leaf_set) sorted))
      ids
  in
  { t with tables; leaves }

let node_count t = Array.length t.ids
let rows t = t.rows

let owner_of t target =
  if target < 0 || target > Params.mask t.params then
    invalid_arg "Pastry.owner_of";
  Pid.unsafe_of_int (owner_id t target)

type lookup_result = { owner : Pid.t; hops : int; path : Pid.t list }

(* One routing step from a node in the snapshot toward [target], given the
   precomputed [owner]. Shared by [lookup] and [next_hop] so the two stay
   in lockstep. *)
let step t ~current ~owner ~target =
  let space = Params.space t.params in
  let i = Hashtbl.find t.index_of current in
  (* Leaf-set shortcut: if the owner is in our leaf set, go there. *)
  if Array.exists (( = ) owner) t.leaves.(i) then owner
  else begin
    let row = shared_prefix_digits t current target in
    let col = digit t target row in
    let next = t.tables.(i).(row).(col) in
    if next >= 0 && next <> current then next
    else begin
      (* Rare case: no table entry — take any known node strictly
         numerically closer to the target. *)
      let candidates =
        Array.to_list t.leaves.(i)
        @ (Array.to_list (Array.concat (Array.to_list t.tables.(i)))
          |> List.filter (fun id -> id >= 0))
      in
      (* Pastry's rare-case rule: shares at least as long a prefix
         with the target AND is numerically closer — both conditions
         guarantee progress, hence termination. *)
      let closer =
        List.filter
          (fun id ->
            shared_prefix_digits t id target >= row
            && ring_distance ~space id target
               < ring_distance ~space current target)
          candidates
      in
      match closer with
      | [] -> owner (* give up gracefully: jump to the owner *)
      | c :: rest ->
          List.fold_left
            (fun best id ->
              if
                ring_distance ~space id target
                < ring_distance ~space best target
              then id
              else best)
            c rest
    end
  end

let lookup t ~from ~target =
  if target < 0 || target > Params.mask t.params then
    invalid_arg "Pastry.lookup: target";
  if not (Hashtbl.mem t.index_of (Pid.to_int from)) then
    invalid_arg "Pastry.lookup: unknown origin";
  let owner = owner_id t target in
  let rec route current hops acc =
    if current = owner then
      { owner = Pid.unsafe_of_int owner; hops; path = List.rev acc }
    else
      let next = step t ~current ~owner ~target in
      route next (hops + 1) (Pid.unsafe_of_int next :: acc)
  in
  route (Pid.to_int from) 0 [ from ]

let next_hop t ~from ~target =
  if target < 0 || target > Params.mask t.params then
    invalid_arg "Pastry.next_hop: target";
  let current = Pid.to_int from in
  let owner = owner_id t target in
  if current = owner then None
  else if not (Hashtbl.mem t.index_of current) then
    (* Stale sender outside the snapshot: jump straight to the owner. *)
    Some (Pid.unsafe_of_int owner)
  else Some (Pid.unsafe_of_int (step t ~current ~owner ~target))

let leaf_set_of t p =
  let i = Hashtbl.find t.index_of (Pid.to_int p) in
  Array.to_list (Array.map Pid.unsafe_of_int t.leaves.(i))
