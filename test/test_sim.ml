module Heap = Lesslog_sim.Heap
module Ladder = Lesslog_sim.Ladder_queue
module Engine = Lesslog_sim.Engine

(* --- Heap -------------------------------------------------------------- *)

let test_heap_ordering () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2 ];
  Alcotest.(check int) "length" 6 (Heap.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  Alcotest.(check (list int)) "drain sorted" [ 1; 2; 3; 5; 8; 9 ]
    (List.init 6 (fun _ -> Option.get (Heap.pop h)))

let test_heap_empty () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop" None (Heap.pop h);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty")
    (fun () -> ignore (Heap.pop_exn h))

let test_heap_to_sorted_list_nondestructive () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3 ] (Heap.to_sorted_list h);
  Alcotest.(check int) "untouched" 3 (Heap.length h)

let test_heap_clear () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 1; 2 ];
  Heap.clear h;
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let prop_heap_sorts =
  Test_support.qcheck_case ~name:"heap drain = List.sort"
    QCheck2.Gen.(list_size (int_range 0 200) (int_range (-1000) 1000))
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      Heap.to_sorted_list h = List.sort compare xs)

let prop_heap_interleaved =
  Test_support.qcheck_case ~name:"interleaved push/pop keeps min order"
    QCheck2.Gen.(list_size (int_range 0 100) (option (int_range 0 1000)))
    (fun ops ->
      (* Some x = push x, None = pop; popped sequence must never exceed the
         current min of remaining contents. *)
      let h = Heap.create ~cmp:compare in
      let model = ref [] in
      List.for_all
        (fun op ->
          match op with
          | Some x ->
              Heap.push h x;
              model := x :: !model;
              true
          | None -> (
              match Heap.pop h with
              | None -> !model = []
              | Some v ->
                  let min_model = List.fold_left min max_int !model in
                  let ok = v = min_model in
                  model := List.filter (( <> ) v) !model @ List.init
                    (List.length (List.filter (( = ) v) !model) - 1)
                    (fun _ -> v);
                  ok))
        ops)

(* --- Ladder queue ------------------------------------------------------- *)

(* The contract under test: for the same pushes, the ladder queue pops in
   exactly the order of a binary heap keyed by (Float.compare time,
   Int.compare seq) — the differential oracle of the scheduler swap. *)

let event_cmp (t1, s1) (t2, s2) =
  match Float.compare t1 t2 with 0 -> Int.compare s1 s2 | c -> c

let ladder_drain lq =
  let rec go acc =
    if Ladder.pop lq then go ((Ladder.time lq, Ladder.seq lq) :: acc)
    else List.rev acc
  in
  go []

let ladder_of_times ?buckets ?split_threshold times =
  let lq = Ladder.create ?buckets ?split_threshold () in
  List.iteri
    (fun i t -> Ladder.push lq ~time:t ~seq:i ~h:0 ~a:i ~b:0 ~x:t)
    times;
  lq

let oracle_order times =
  let h = Heap.create ~cmp:event_cmp in
  List.iteri (fun i t -> Heap.push h (t, i)) times;
  Heap.to_sorted_list h

let test_ladder_basic () =
  let lq = ladder_of_times [ 5.0; 1.0; 3.0; 2.0; 4.0 ] in
  Alcotest.(check int) "length" 5 (Ladder.length lq);
  Alcotest.(check (list (pair (float 0.0) int)))
    "sorted"
    [ (1.0, 1); (2.0, 3); (3.0, 2); (4.0, 4); (5.0, 0) ]
    (ladder_drain lq);
  Alcotest.(check bool) "drained" true (Ladder.is_empty lq)

let test_ladder_fifo_ties () =
  let lq = ladder_of_times [ 1.0; 1.0; 1.0; 0.5; 1.0 ] in
  Alcotest.(check (list (pair (float 0.0) int)))
    "seq breaks ties"
    [ (0.5, 3); (1.0, 0); (1.0, 1); (1.0, 2); (1.0, 4) ]
    (ladder_drain lq)

let test_ladder_payload_roundtrip () =
  let lq = Ladder.create () in
  Ladder.push lq ~time:2.0 ~seq:0 ~h:7 ~a:123 ~b:456 ~x:3.25;
  Ladder.push lq ~time:1.0 ~seq:1 ~h:8 ~a:(-9) ~b:0 ~x:0.0;
  Alcotest.(check bool) "pop" true (Ladder.pop lq);
  Alcotest.(check int) "h" 8 (Ladder.handler lq);
  Alcotest.(check int) "a" (-9) (Ladder.arg_a lq);
  Alcotest.(check bool) "pop2" true (Ladder.pop lq);
  Alcotest.(check int) "h2" 7 (Ladder.handler lq);
  Alcotest.(check int) "a2" 123 (Ladder.arg_a lq);
  Alcotest.(check int) "b2" 456 (Ladder.arg_b lq);
  Alcotest.(check (float 0.0)) "x2" 3.25 (Ladder.arg_x lq);
  Alcotest.(check bool) "empty" false (Ladder.pop lq)

let ladder_matches_oracle ?buckets ?split_threshold times =
  ladder_drain (ladder_of_times ?buckets ?split_threshold times)
  = oracle_order times

let test_ladder_pop_until_boundary () =
  let lq = ladder_of_times [ 1.0; 2.0; 2.0; 3.0 ] in
  Alcotest.(check bool) "below bound" true (Ladder.pop_until lq ~bound:2.0);
  Alcotest.(check (float 0.0)) "popped 1.0" 1.0 (Ladder.time lq);
  (* Strictly below: events at exactly the bound stay queued. *)
  Alcotest.(check bool) "at bound stays" false (Ladder.pop_until lq ~bound:2.0);
  Alcotest.(check int) "untouched" 3 (Ladder.length lq);
  Alcotest.(check (float 0.0)) "min_time" 2.0 (Ladder.min_time lq);
  Alcotest.(check bool) "next window" true (Ladder.pop_until lq ~bound:2.5);
  Alcotest.(check bool) "fifo tie" true (Ladder.pop_until lq ~bound:2.5);
  Alcotest.(check bool) "window drained" false (Ladder.pop_until lq ~bound:2.5);
  Alcotest.(check bool) "empty queue" false
    (Ladder.pop_until (Ladder.create ()) ~bound:10.0)

let test_heap_pop_if () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Alcotest.(check (option int)) "accepts" (Some 1) (Heap.pop_if h (fun v -> v < 2));
  Alcotest.(check (option int)) "rejects" None (Heap.pop_if h (fun v -> v < 2));
  Alcotest.(check int) "untouched" 2 (Heap.length h);
  Alcotest.(check (option int)) "empty" None
    (Heap.pop_if (Heap.create ~cmp:compare) (fun _ -> true))

(* Epoch-wise draining — [while pop_until ~bound] windows chained over
   the whole queue — must visit exactly the full-drain order, with the
   heap's [pop_if] as the mirror oracle. *)
let prop_ladder_pop_until_epochs =
  Test_support.qcheck_case ~name:"epoch windows = full drain (ladder & heap)"
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 300) (float_bound_inclusive 50.0))
        (float_range 0.1 10.0))
    (fun (times, width) ->
      let lq = ladder_of_times ~buckets:4 ~split_threshold:4 times in
      let h = Heap.create ~cmp:event_cmp in
      List.iteri (fun i t -> Heap.push h (t, i)) times;
      let out_l = ref [] and out_h = ref [] in
      while not (Ladder.is_empty lq) do
        let bound = Ladder.min_time lq +. width in
        while Ladder.pop_until lq ~bound do
          out_l := (Ladder.time lq, Ladder.seq lq) :: !out_l
        done;
        let rec drain () =
          match Heap.pop_if h (fun (t, _) -> t < bound) with
          | None -> ()
          | Some ev ->
              out_h := ev :: !out_h;
              drain ()
        in
        drain ()
      done;
      Heap.is_empty h
      && List.rev !out_l = oracle_order times
      && !out_h = !out_l)

let test_engine_step_below_and_advance () =
  let e = Engine.create () in
  let seen = ref [] in
  let h = Engine.register_handler e (fun a _ _ -> seen := a :: !seen) in
  List.iter
    (fun (t, a) -> Engine.post_at e ~time:t ~h ~a ~b:0 ~x:0.0)
    [ (1.0, 1); (2.0, 2); (3.0, 3) ];
  Alcotest.(check (option (float 0.0))) "next_time" (Some 1.0)
    (Engine.next_time e);
  Alcotest.(check bool) "below" true (Engine.step_below e ~bound:2.0);
  (* Head at the bound: nothing runs, the clock stays put. *)
  Alcotest.(check bool) "at bound" false (Engine.step_below e ~bound:2.0);
  Alcotest.(check (float 0.0)) "clock" 1.0 (Engine.now e);
  Engine.drain_below e ~bound:10.0;
  Alcotest.(check (list int)) "order" [ 1; 2; 3 ] (List.rev !seen);
  Alcotest.(check (option (float 0.0))) "drained" None (Engine.next_time e);
  Engine.advance_to e ~time:7.5;
  Alcotest.(check (float 0.0)) "advanced" 7.5 (Engine.now e);
  Engine.advance_to e ~time:2.0;
  Alcotest.(check (float 0.0)) "never backwards" 7.5 (Engine.now e)

let prop_ladder_uniform =
  Test_support.qcheck_case ~name:"ladder = heap (uniform times)"
    QCheck2.Gen.(list_size (int_range 0 400) (float_bound_inclusive 100.0))
    ladder_matches_oracle

let prop_ladder_duplicates =
  Test_support.qcheck_case ~name:"ladder = heap (clustered duplicate times)"
    QCheck2.Gen.(list_size (int_range 0 400) (float_bound_inclusive 8.0))
    (fun xs ->
      (* Quarter-resolution rounding manufactures exact duplicates, the
         FIFO-tie stressor. Small rungs force splits and refills. *)
      let times = List.map (fun x -> Float.round (x *. 4.0) /. 4.0) xs in
      ladder_matches_oracle ~buckets:4 ~split_threshold:4 times)

let prop_ladder_wide_range =
  Test_support.qcheck_case ~name:"ladder = heap (wide-range times)"
    QCheck2.Gen.(list_size (int_range 0 300) (float_bound_inclusive 100.0))
    (fun xs ->
      (* x^4 spreads times over ~8 orders of magnitude: far-band spills,
         refills, and bucket splits all trigger. *)
      let times = List.map (fun x -> x *. x *. x *. x) xs in
      ladder_matches_oracle ~buckets:8 ~split_threshold:8 times)

let prop_ladder_interleaved =
  Test_support.qcheck_case ~name:"interleaved ladder pops = heap pops"
    QCheck2.Gen.(
      list_size (int_range 0 300) (option (float_bound_inclusive 50.0)))
    (fun ops ->
      (* Some t = push at time t, None = pop: pushes interleave with pops
         (including below already-popped times, as a zero-delay message
         would) and every pop must agree with the oracle heap. *)
      let lq = Ladder.create ~buckets:8 ~split_threshold:8 () in
      let h = Heap.create ~cmp:event_cmp in
      let seq = ref 0 in
      List.for_all
        (fun op ->
          match op with
          | Some t ->
              Ladder.push lq ~time:t ~seq:!seq ~h:0 ~a:0 ~b:0 ~x:0.0;
              Heap.push h (t, !seq);
              incr seq;
              true
          | None -> (
              match (Heap.pop h, Ladder.pop lq) with
              | None, false -> true
              | Some (t, s), true -> Ladder.time lq = t && Ladder.seq lq = s
              | _ -> false))
        ops)

(* Degenerate-case stressors: run an op list (Some t = push, None = pop)
   against the ladder and the oracle heap and demand identical pop
   streams. Tiny rungs make every structural edge (splits, far-heap
   refills, current-rung boundaries) reachable with short inputs. *)
let ladder_agrees_on_ops ops =
  let lq = Ladder.create ~buckets:4 ~split_threshold:4 () in
  let h = Heap.create ~cmp:event_cmp in
  let seq = ref 0 in
  List.for_all
    (fun op ->
      match op with
      | Some t ->
          Ladder.push lq ~time:t ~seq:!seq ~h:0 ~a:0 ~b:0 ~x:0.0;
          Heap.push h (t, !seq);
          incr seq;
          true
      | None -> (
          match (Heap.pop h, Ladder.pop lq) with
          | None, false -> true
          | Some (t, s), true -> Ladder.time lq = t && Ladder.seq lq = s
          | _ -> false))
    ops

let prop_ladder_all_equal =
  Test_support.qcheck_case ~name:"ladder = heap (all-equal timestamps)"
    QCheck2.Gen.(
      pair (float_bound_inclusive 10.0) (int_range 0 200))
    (fun (t, n) ->
      (* Every event in one bucket: pops must come back in pure seq
         (FIFO) order however often the rung splits. *)
      ladder_matches_oracle ~buckets:4 ~split_threshold:4
        (List.init n (fun _ -> t)))

let prop_ladder_far_heap_refill =
  Test_support.qcheck_case ~name:"ladder = heap (far-heap refill at epochs)"
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 50) (float_bound_inclusive 1.0))
        (list_size (int_range 1 50)
           (map (fun x -> 1000.0 +. (x *. 1000.0)) (float_bound_inclusive 4.0)))
        (int_range 0 50))
    (fun (near, far, pops) ->
      (* Near events seed the rungs, far events land in the far heap;
         draining past the near horizon forces refill-scatter, and a
         second far batch after partial drain lands in a rebuilt epoch. *)
      let ops =
        List.map (fun t -> Some t) near
        @ List.map (fun t -> Some t) far
        @ List.init pops (fun _ -> None)
        @ List.map (fun t -> Some (t +. 5000.0)) far
        @ List.init (List.length near + (2 * List.length far)) (fun _ -> None)
      in
      ladder_agrees_on_ops ops)

let prop_ladder_rung_edge =
  Test_support.qcheck_case ~name:"ladder = heap (push/pop at rung edge)"
    QCheck2.Gen.(
      list_size (int_range 0 200)
        (option (triple (int_range 0 64) (int_range (-1) 1) bool)))
    (fun ops ->
      (* Timestamps sit exactly on bucket-width multiples or one ulp to
         either side — the boundary where a push races the current rung's
         drain position. *)
      let ops =
        List.map
          (Option.map (fun (k, side, fine) ->
               let base = float_of_int k *. 0.125 in
               let eps = if fine then epsilon_float else 1e-9 in
               base +. (float_of_int side *. eps *. Float.max 1.0 base)))
          ops
      in
      ladder_agrees_on_ops ops)

(* --- Engine ------------------------------------------------------------ *)

let test_engine_time_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:2.0 (fun () -> log := "b" :: !log);
  Engine.schedule e ~delay:1.0 (fun () -> log := "a" :: !log);
  Engine.schedule e ~delay:3.0 (fun () -> log := "c" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock" 3.0 (Engine.now e)

let test_engine_fifo_at_same_time () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Engine.schedule_at e ~time:1.0 (fun () -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "fifo ties" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~delay:1.0 (fun () ->
      log := "outer" :: !log;
      Engine.schedule e ~delay:0.5 (fun () -> log := "inner" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.(check (float 1e-9)) "clock" 1.5 (Engine.now e)

let test_engine_until () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e ~delay:1.0 (fun () -> incr fired);
  Engine.schedule e ~delay:10.0 (fun () -> incr fired);
  Engine.run ~until:5.0 e;
  Alcotest.(check int) "only early event" 1 !fired;
  Alcotest.(check (float 1e-9)) "clock clamped" 5.0 (Engine.now e);
  Alcotest.(check int) "late event queued" 1 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "late event runs" 2 !fired

let test_engine_until_idle_advances_clock () =
  let e = Engine.create () in
  Engine.run ~until:7.0 e;
  Alcotest.(check (float 1e-9)) "clock" 7.0 (Engine.now e)

let test_engine_max_events () =
  let e = Engine.create () in
  let rec forever () = Engine.schedule e ~delay:1.0 forever in
  forever ();
  Engine.run ~max_events:100 e;
  Alcotest.(check int) "bounded" 100 (Engine.events_executed e)

let test_engine_rejects_past () =
  let e = Engine.create () in
  Engine.schedule e ~delay:5.0 (fun () -> ());
  ignore (Engine.step e);
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule_at: time in the past")
    (fun () -> Engine.schedule_at e ~time:1.0 (fun () -> ()));
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule e ~delay:(-1.0) (fun () -> ()))

let test_engine_packed_dispatch () =
  let e = Engine.create () in
  let log = ref [] in
  let h = Engine.register_handler e (fun a b x -> log := (a, b, x) :: !log) in
  Engine.post e ~delay:2.0 ~h ~a:1 ~b:10 ~x:0.5;
  Engine.post_at e ~time:1.0 ~h ~a:2 ~b:20 ~x:1.5;
  Engine.schedule e ~delay:1.5 (fun () -> log := (99, 0, 0.0) :: !log);
  Engine.run e;
  Alcotest.(check (list (triple int int (float 0.0))))
    "payloads in time order"
    [ (2, 20, 1.5); (99, 0, 0.0); (1, 10, 0.5) ]
    (List.rev !log);
  Alcotest.(check int) "executed" 3 (Engine.events_executed e)

let test_engine_packed_fifo_with_closures () =
  (* Same-time events fire in scheduling order across both planes. *)
  let e = Engine.create () in
  let log = ref [] in
  let h = Engine.register_handler e (fun a _ _ -> log := a :: !log) in
  Engine.schedule_at e ~time:1.0 (fun () -> log := 0 :: !log);
  Engine.post_at e ~time:1.0 ~h ~a:1 ~b:0 ~x:0.0;
  Engine.schedule_at e ~time:1.0 (fun () -> log := 2 :: !log);
  Engine.post_at e ~time:1.0 ~h ~a:3 ~b:0 ~x:0.0;
  Engine.run e;
  Alcotest.(check (list int)) "cross-plane fifo" [ 0; 1; 2; 3 ] (List.rev !log)

let test_engine_packed_reentrant () =
  (* A handler posting to itself: the arrival-chain shape of Des_sim. *)
  let e = Engine.create () in
  let fired = ref 0 in
  let h = ref (-1) in
  h :=
    Engine.register_handler e (fun a _ _ ->
        incr fired;
        if a > 0 then Engine.post e ~delay:1.0 ~h:!h ~a:(a - 1) ~b:0 ~x:0.0);
  Engine.post e ~delay:1.0 ~h:!h ~a:9 ~b:0 ~x:0.0;
  Engine.run e;
  Alcotest.(check int) "chain length" 10 !fired;
  Alcotest.(check (float 1e-9)) "clock" 10.0 (Engine.now e)

let test_engine_post_rejects_past () =
  let e = Engine.create () in
  let h = Engine.register_handler e (fun _ _ _ -> ()) in
  Engine.post e ~delay:5.0 ~h ~a:0 ~b:0 ~x:0.0;
  ignore (Engine.step e);
  Alcotest.check_raises "past" (Invalid_argument "Engine.post_at: time in the past")
    (fun () -> Engine.post_at e ~time:1.0 ~h ~a:0 ~b:0 ~x:0.0);
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.post: negative delay") (fun () ->
      Engine.post e ~delay:(-1.0) ~h ~a:0 ~b:0 ~x:0.0)

(* post_batch is a fused loop over post_at: same events, same seqs, so
   two engines fed the same slice one way or the other must execute the
   identical sequence — including FIFO ties between batch and earlier
   singles. *)
let prop_post_batch_equals_posts =
  Test_support.qcheck_case ~name:"post_batch = post_at sequence"
    QCheck2.Gen.(
      list_size (int_range 0 60)
        (tup4 (float_bound_inclusive 20.0) (int_range 0 9) (int_range 0 99)
           (float_bound_inclusive 1.0)))
    (fun events ->
      let run feed =
        let e = Engine.create () in
        let log = ref [] in
        let h =
          Engine.register_handler e (fun a b x ->
              log := (Engine.now e, a, b, x) :: !log)
        in
        feed e h;
        Engine.run e;
        List.rev !log
      in
      let singles =
        run (fun e h ->
            List.iter
              (fun (t, a, b, x) -> Engine.post_at e ~time:t ~h ~a ~b ~x)
              events)
      in
      let batched =
        run (fun e h ->
            let n = List.length events in
            let time = Array.make n 0.0
            and ha = Array.make n h
            and a = Array.make n 0
            and b = Array.make n 0
            and x = Array.make n 0.0 in
            List.iteri
              (fun i (t, ai, bi, xi) ->
                time.(i) <- t;
                a.(i) <- ai;
                b.(i) <- bi;
                x.(i) <- xi)
              events;
            Engine.post_batch e ~len:n ~time ~h:ha ~a ~b ~x)
      in
      singles = batched)

let test_post_batch_validates () =
  let e = Engine.create () in
  let h = Engine.register_handler e (fun _ _ _ -> ()) in
  let arr n v = Array.make n v in
  Alcotest.check_raises "len over array"
    (Invalid_argument "Engine.post_batch: len exceeds a field array")
    (fun () ->
      Engine.post_batch e ~len:3 ~time:(arr 2 0.0) ~h:(arr 3 h) ~a:(arr 3 0)
        ~b:(arr 3 0) ~x:(arr 3 0.0));
  Engine.schedule_at e ~time:1.0 (fun () -> ());
  Engine.run e;
  Alcotest.check_raises "past time in slice"
    (Invalid_argument "Engine.post_batch: time in the past")
    (fun () ->
      Engine.post_batch e ~len:1 ~time:(arr 1 0.5) ~h:(arr 1 h) ~a:(arr 1 0)
        ~b:(arr 1 0) ~x:(arr 1 0.0))

let test_next_time_inf () =
  let e = Engine.create () in
  Alcotest.(check (float 0.0)) "empty = infinity" Float.infinity
    (Engine.next_time_inf e);
  Engine.schedule_at e ~time:2.5 (fun () -> ());
  Alcotest.(check (float 0.0)) "head time" 2.5 (Engine.next_time_inf e)

let prop_engine_executes_in_time_order =
  Test_support.qcheck_case ~name:"events run in nondecreasing time"
    QCheck2.Gen.(list_size (int_range 0 100) (float_bound_inclusive 100.0))
    (fun delays ->
      let e = Engine.create () in
      let times = ref [] in
      List.iter
        (fun d -> Engine.schedule e ~delay:d (fun () -> times := Engine.now e :: !times))
        delays;
      Engine.run e;
      let rec nondecreasing = function
        | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
        | _ -> true
      in
      nondecreasing (List.rev !times))

let () =
  Alcotest.run "sim"
    [
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "to_sorted_list" `Quick
            test_heap_to_sorted_list_nondestructive;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "pop_if" `Quick test_heap_pop_if;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "ordering" `Quick test_ladder_basic;
          Alcotest.test_case "fifo ties" `Quick test_ladder_fifo_ties;
          Alcotest.test_case "payload roundtrip" `Quick
            test_ladder_payload_roundtrip;
          Alcotest.test_case "pop_until boundary" `Quick
            test_ladder_pop_until_boundary;
        ] );
      ( "engine",
        [
          Alcotest.test_case "time ordering" `Quick test_engine_time_ordering;
          Alcotest.test_case "fifo ties" `Quick test_engine_fifo_at_same_time;
          Alcotest.test_case "nested scheduling" `Quick
            test_engine_nested_scheduling;
          Alcotest.test_case "until" `Quick test_engine_until;
          Alcotest.test_case "until on idle queue" `Quick
            test_engine_until_idle_advances_clock;
          Alcotest.test_case "max_events guard" `Quick test_engine_max_events;
          Alcotest.test_case "rejects past times" `Quick test_engine_rejects_past;
          Alcotest.test_case "packed dispatch" `Quick test_engine_packed_dispatch;
          Alcotest.test_case "packed fifo with closures" `Quick
            test_engine_packed_fifo_with_closures;
          Alcotest.test_case "packed reentrant chain" `Quick
            test_engine_packed_reentrant;
          Alcotest.test_case "packed rejects past" `Quick
            test_engine_post_rejects_past;
          Alcotest.test_case "step_below / drain_below / advance_to" `Quick
            test_engine_step_below_and_advance;
          Alcotest.test_case "post_batch validates" `Quick
            test_post_batch_validates;
          Alcotest.test_case "next_time_inf sentinel" `Quick
            test_next_time_inf;
        ] );
      ( "properties",
        [
          prop_heap_sorts;
          prop_heap_interleaved;
          prop_ladder_uniform;
          prop_ladder_duplicates;
          prop_ladder_wide_range;
          prop_ladder_interleaved;
          prop_ladder_all_equal;
          prop_ladder_far_heap_refill;
          prop_ladder_rung_edge;
          prop_ladder_pop_until_epochs;
          prop_engine_executes_in_time_order;
          prop_post_batch_equals_posts;
        ] );
    ]
