(** Streaming summary statistics (Welford's online algorithm) — no sample
    retention, suitable for long simulations. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val total : t -> float
val mean : t -> float
(** 0 when empty. *)

val variance : t -> float
(** Population variance; 0 when fewer than two samples. *)

val stddev : t -> float
val min_value : t -> float
(** +inf when empty. *)

val max_value : t -> float
(** -inf when empty. *)

val merge : t -> t -> t
(** Combine two independent accumulations (parallel sweeps). *)

val pp : Format.formatter -> t -> unit
