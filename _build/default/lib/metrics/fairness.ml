let jain_of_list = function
  | [] -> 1.0
  | xs ->
      let n = float_of_int (List.length xs) in
      let s = List.fold_left ( +. ) 0.0 xs in
      let s2 = List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs in
      if s2 = 0.0 then 1.0 else s *. s /. (n *. s2)

let jain a = jain_of_list (Array.to_list a)

let positives a = List.filter (fun x -> x > 0.0) (Array.to_list a)

let jain_nonzero a = jain_of_list (positives a)

let peak_to_mean a =
  match positives a with
  | [] -> 1.0
  | xs ->
      let n = float_of_int (List.length xs) in
      let mean = List.fold_left ( +. ) 0.0 xs /. n in
      let peak = List.fold_left Float.max 0.0 xs in
      peak /. mean
