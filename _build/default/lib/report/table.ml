let render ~header rows =
  let cols = List.length header in
  let pad row = row @ List.init (max 0 (cols - List.length row)) (fun _ -> "") in
  let rows = List.map pad rows in
  let all = header :: rows in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let render_row row =
    String.concat "  "
      (List.map2
         (fun cell w -> cell ^ String.make (w - String.length cell) ' ')
         row widths)
    |> String.trim
    |> fun s ->
    (* Keep right padding inside the line for alignment; trim only the
       trailing spaces of the final column. *)
    s
  in
  let sep =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row header :: sep :: List.map render_row rows)

let float_cell y =
  if Float.is_integer y && Float.abs y < 1e9 then
    string_of_int (int_of_float y)
  else Printf.sprintf "%.2f" y

let of_series ~x_label series =
  let xs =
    List.concat_map (fun s -> Array.to_list (Series.xs s)) series
    |> List.sort_uniq compare
  in
  let header = x_label :: List.map Series.label series in
  let rows =
    List.map
      (fun x ->
        float_cell x
        :: List.map
             (fun s ->
               match Series.y_at s ~x with
               | Some y -> float_cell y
               | None -> "-")
             series)
      xs
  in
  render ~header rows
