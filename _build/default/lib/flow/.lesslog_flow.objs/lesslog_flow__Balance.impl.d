lib/flow/balance.ml: Array Float Flow Hashtbl Lesslog Lesslog_id Lesslog_membership Lesslog_storage List Option Params Pid Policy
