type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

(* [Int64.to_int] keeps the low 63 bits, whose top bit is the OCaml int's
   sign bit; clearing it leaves 62 uniform non-negative bits. *)
let next_int63 t = Int64.to_int (next t) land max_int

let split t =
  let seed = next t in
  create (mix seed)
