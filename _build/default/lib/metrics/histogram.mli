(** Sample-retaining histogram with exact quantiles. Used for hop-count
    and latency distributions, which are small enough to keep. *)

type t

val create : unit -> t
val add : t -> float -> unit
val add_int : t -> int -> unit
val count : t -> int
val mean : t -> float

val quantile : t -> float -> float
(** [quantile t q] for [q] in [\[0, 1\]], by nearest-rank on the sorted
    samples. @raise Invalid_argument when empty or [q] out of range. *)

val median : t -> float
val max_value : t -> float
val min_value : t -> float

val buckets : t -> width:float -> (float * int) list
(** Fixed-width bucketing [(lower_bound, count)], ascending, for display. *)

val pp : Format.formatter -> t -> unit
