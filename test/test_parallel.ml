module Par = Lesslog_parallel.Par

let test_map_identity_small () =
  let a = Array.init 10 (fun i -> i) in
  Alcotest.(check (array int)) "doubled"
    (Array.map (fun x -> 2 * x) a)
    (Par.map ~domains:3 ~f:(fun x -> 2 * x) a)

let test_map_empty () =
  Alcotest.(check (array int)) "empty" [||] (Par.map ~f:(fun x -> x) [||])

let test_map_single_domain () =
  let a = Array.init 100 (fun i -> i) in
  Alcotest.(check (array int)) "sequential path"
    (Array.map succ a)
    (Par.map ~domains:1 ~f:succ a)

let test_map_more_domains_than_elements () =
  let a = [| 1; 2 |] in
  Alcotest.(check (array int)) "clamped" [| 2; 3 |]
    (Par.map ~domains:16 ~f:succ a)

let test_map_list () =
  Alcotest.(check (list int)) "list" [ 2; 4; 6 ]
    (Par.map_list ~domains:2 ~f:(fun x -> 2 * x) [ 1; 2; 3 ])

let test_map_exception_propagates () =
  let a = Array.init 20 (fun i -> i) in
  match
    Par.map ~domains:4 ~f:(fun x -> if x = 13 then failwith "boom" else x) a
  with
  | exception Failure msg -> Alcotest.(check string) "message" "boom" msg
  | _ -> Alcotest.fail "expected exception"

let test_exception_on_caller_stride_joins_all () =
  (* Worker 0 runs on the caller's own stack; if [f] raises there, the
     spawned domains must still be joined before the exception escapes.
     Index 0 is worker 0's first element, so the failure fires before any
     spawned worker could be joined by accident — every other worker's
     stride completing proves the join-all path ran. *)
  let n = 40 and domains = 4 in
  let processed = Atomic.make 0 in
  let f x =
    if x = 0 then failwith "w0"
    else begin
      Atomic.incr processed;
      x
    end
  in
  (match Par.map ~domains ~f (Array.init n (fun i -> i)) with
  | exception Failure msg -> Alcotest.(check string) "message" "w0" msg
  | _ -> Alcotest.fail "expected exception");
  (* Workers 1..3 own 30 of the 40 indices; worker 0 stopped at its
     first. All 30 must have run to completion. *)
  Alcotest.(check int) "other strides completed" 30 (Atomic.get processed)

let test_two_failures_lowest_worker_wins () =
  (* Indices 1 and 2 live on workers 1 and 2; when both raise, the
     re-raised exception is deterministically the lowest worker's. *)
  let f x =
    if x = 1 then failwith "worker1"
    else if x = 2 then failwith "worker2"
    else x
  in
  match Par.map ~domains:4 ~f (Array.init 40 (fun i -> i)) with
  | exception Failure msg -> Alcotest.(check string) "deterministic" "worker1" msg
  | _ -> Alcotest.fail "expected exception"

let test_recommended_domains_positive () =
  let d = Par.recommended_domains () in
  Alcotest.(check bool) "in range" true (d >= 1 && d <= 16)

(* --- Pool -------------------------------------------------------------- *)

let test_pool_barrier_reuse () =
  (* One pool, many barrier crossings: every worker runs exactly once
     per crossing, including worker 0 on the caller's stack. *)
  let domains = 3 in
  let pool = Par.Pool.create ~domains in
  Alcotest.(check int) "size" domains (Par.Pool.size pool);
  let counts = Array.make domains 0 in
  for _ = 1 to 50 do
    Par.Pool.run pool (fun w -> counts.(w) <- counts.(w) + 1)
  done;
  Par.Pool.shutdown pool;
  Alcotest.(check (array int)) "each worker ran every crossing"
    (Array.make domains 50) counts

let test_pool_exception_and_reuse () =
  let pool = Par.Pool.create ~domains:3 in
  (match
     Par.Pool.run pool (fun w -> if w >= 1 then failwith (Printf.sprintf "w%d" w))
   with
  | exception Failure msg ->
      Alcotest.(check string) "lowest worker wins" "w1" msg
  | () -> Alcotest.fail "expected exception");
  (* The barrier survived the failed crossing. *)
  let ok = Atomic.make 0 in
  Par.Pool.run pool (fun _ -> Atomic.incr ok);
  Par.Pool.shutdown pool;
  Alcotest.(check int) "usable after failure" 3 (Atomic.get ok)

let test_pool_shutdown () =
  let pool = Par.Pool.create ~domains:2 in
  Par.Pool.run pool (fun _ -> ());
  Par.Pool.shutdown pool;
  Par.Pool.shutdown pool;
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Par.Pool.run: pool is shut down") (fun () ->
      Par.Pool.run pool (fun _ -> ()))

let test_ensure_pool_grows () =
  let p2 = Par.ensure_pool 2 in
  Alcotest.(check bool) "at least 2" true (Par.Pool.size p2 >= 2);
  let p3 = Par.ensure_pool 3 in
  Alcotest.(check bool) "grown to 3" true (Par.Pool.size p3 >= 3);
  let p1 = Par.ensure_pool 1 in
  Alcotest.(check bool) "never shrinks" true (Par.Pool.size p1 >= 3)

let test_nested_map_falls_back () =
  (* A map inside a pool job must not re-enter the pool. *)
  let outer = Array.init 6 (fun i -> i) in
  let got =
    Par.map ~domains:3
      ~f:(fun x ->
        Array.fold_left ( + ) 0
          (Par.map ~domains:3 ~f:(fun y -> (x * 10) + y) [| 1; 2; 3 |]))
      outer
  in
  Alcotest.(check (array int)) "nested"
    (Array.map (fun x -> (30 * x) + 6) outer)
    got

(* --- Barrier ------------------------------------------------------------ *)

let test_barrier_single_party () =
  let b = Par.Barrier.create ~parties:1 () in
  Alcotest.(check int) "parties" 1 (Par.Barrier.parties b);
  let ran = ref 0 in
  for _ = 1 to 5 do
    Par.Barrier.arrive b ~last:(fun () -> incr ran)
  done;
  Alcotest.(check int) "last runs every phase" 5 !ran

let test_barrier_rejects_zero_parties () =
  Alcotest.check_raises "parties < 1"
    (Invalid_argument "Par.Barrier.create: parties") (fun () ->
      ignore (Par.Barrier.create ~parties:0 ()))

let test_barrier_phases_in_pool () =
  (* Workers cross many phases inside one pool job. Per phase, [last]
     runs exactly once and its plain writes (the shared cell) are
     visible to every party after release — the message-passing edge the
     fused engine loop rides. *)
  let parties = 3 and phases = 200 in
  let pool = Par.Pool.create ~domains:parties in
  let b = Par.Barrier.create ~spin:16 ~parties () in
  let cell = ref 0 in
  let last_runs = Atomic.make 0 in
  let bad = Atomic.make 0 in
  Par.Pool.run pool (fun _w ->
      for p = 1 to phases do
        Par.Barrier.arrive b ~last:(fun () ->
            Atomic.incr last_runs;
            cell := p);
        if !cell <> p then Atomic.incr bad
      done);
  Par.Pool.shutdown pool;
  Alcotest.(check int) "one decision per phase" phases (Atomic.get last_runs);
  Alcotest.(check int) "decision visible to all parties" 0 (Atomic.get bad)

let test_barrier_interleaves_with_work () =
  (* Unequal per-party workloads: the barrier must still line everyone
     up, phase after phase, and the fold in [last] must see every
     party's contribution of that phase. *)
  let parties = 4 and phases = 50 in
  let pool = Par.Pool.create ~domains:parties in
  let b = Par.Barrier.create ~parties () in
  let slots = Array.make parties 0 in
  let sum_bad = Atomic.make 0 in
  Par.Pool.run pool (fun w ->
      for p = 1 to phases do
        for _ = 0 to w * 100 do
          ignore (Sys.opaque_identity w)
        done;
        slots.(w) <- p;
        Par.Barrier.arrive b ~last:(fun () ->
            if Array.exists (fun v -> v <> p) slots then Atomic.incr sum_bad)
      done);
  Par.Pool.shutdown pool;
  Alcotest.(check int) "every phase folded all parties" 0 (Atomic.get sum_bad)

let prop_map_matches_sequential =
  Test_support.qcheck_case ~count:50 ~name:"parallel map = Array.map"
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 200) (int_range (-1000) 1000))
        (int_range 1 8))
    (fun (xs, domains) ->
      let a = Array.of_list xs in
      Par.map ~domains ~f:(fun x -> (x * 31) lxor 7) a
      = Array.map (fun x -> (x * 31) lxor 7) a)

let test_deterministic_experiment_under_parallelism () =
  (* The harness guarantee: figure sweeps give identical results at any
     domain count because every point is independently seeded. *)
  let config = { Lesslog_harness.Experiments.quick with domains = 1 } in
  let seq = Lesslog_harness.Experiments.fig5 ~config () in
  let config = { config with domains = 4 } in
  let par = Lesslog_harness.Experiments.fig5 ~config () in
  List.iter2
    (fun a b ->
      Alcotest.(check string) "label" (Lesslog_report.Series.label a)
        (Lesslog_report.Series.label b);
      Alcotest.(check (array (float 1e-9)))
        "identical ys"
        (Lesslog_report.Series.ys a)
        (Lesslog_report.Series.ys b))
    seq par

let () =
  Alcotest.run "parallel"
    [
      ( "par",
        [
          Alcotest.test_case "map" `Quick test_map_identity_small;
          Alcotest.test_case "empty" `Quick test_map_empty;
          Alcotest.test_case "one domain" `Quick test_map_single_domain;
          Alcotest.test_case "domains > n" `Quick
            test_map_more_domains_than_elements;
          Alcotest.test_case "map_list" `Quick test_map_list;
          Alcotest.test_case "exception propagates" `Quick
            test_map_exception_propagates;
          Alcotest.test_case "caller-stride failure joins all" `Quick
            test_exception_on_caller_stride_joins_all;
          Alcotest.test_case "two failures: lowest worker wins" `Quick
            test_two_failures_lowest_worker_wins;
          Alcotest.test_case "recommended domains" `Quick
            test_recommended_domains_positive;
          Alcotest.test_case "parallel sweeps deterministic" `Slow
            test_deterministic_experiment_under_parallelism;
        ] );
      ( "pool",
        [
          Alcotest.test_case "barrier reuse" `Quick test_pool_barrier_reuse;
          Alcotest.test_case "exception then reuse" `Quick
            test_pool_exception_and_reuse;
          Alcotest.test_case "shutdown" `Quick test_pool_shutdown;
          Alcotest.test_case "ensure_pool grows" `Quick test_ensure_pool_grows;
          Alcotest.test_case "nested map sequential" `Quick
            test_nested_map_falls_back;
        ] );
      ( "barrier",
        [
          Alcotest.test_case "single party" `Quick test_barrier_single_party;
          Alcotest.test_case "rejects zero parties" `Quick
            test_barrier_rejects_zero_parties;
          Alcotest.test_case "fused phases in a pool job" `Quick
            test_barrier_phases_in_pool;
          Alcotest.test_case "unequal work per party" `Quick
            test_barrier_interleaves_with_work;
        ] );
      ("properties", [ prop_map_matches_sequential ]);
    ]
