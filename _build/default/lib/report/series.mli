(** A labelled (x, y) data series — one line of a paper figure. *)

type t = { label : string; points : (float * float) array }

val make : label:string -> (float * float) list -> t
val label : t -> string
val xs : t -> float array
val ys : t -> float array
val y_at : t -> x:float -> float option
(** Exact-x lookup. *)

val map_y : t -> f:(float -> float) -> t
