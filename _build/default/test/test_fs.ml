open Lesslog_id
module Fs = Lesslog_fs.Fs
module Cluster = Lesslog.Cluster
module Self_org = Lesslog.Self_org
module Status_word = Lesslog_membership.Status_word
module Demand = Lesslog_workload.Demand
module Catalog = Lesslog_workload.Catalog
module Rng = Lesslog_prng.Rng

let pid = Pid.unsafe_of_int

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %a" Fs.pp_error e

let test_write_read_roundtrip () =
  let fs = Fs.create ~m:5 () in
  let v = ok (Fs.write fs ~key:"a.txt" ~data:"hello world") in
  Alcotest.(check int) "first version" 0 v;
  let r = ok (Fs.read fs ~origin:(pid 7) ~key:"a.txt") in
  Alcotest.(check string) "data" "hello world" r.Fs.data;
  Alcotest.(check int) "version" 0 r.Fs.version;
  Alcotest.(check bool) "hops bounded" true (r.Fs.hops <= 5)

let test_read_missing () =
  let fs = Fs.create ~m:4 () in
  match Fs.read fs ~origin:(pid 1) ~key:"ghost" with
  | Error Fs.Not_found -> ()
  | Ok _ -> Alcotest.fail "expected Not_found"
  | Error e -> Alcotest.failf "wrong error: %a" Fs.pp_error e

let test_overwrite_bumps_version_everywhere () =
  let fs = Fs.create ~m:5 () in
  ignore (ok (Fs.write fs ~key:"doc" ~data:"v0"));
  (* Spread replicas first. *)
  let rng = Rng.create ~seed:1 in
  let cluster = Fs.cluster fs in
  for _ = 1 to 5 do
    let holders = Cluster.holders cluster ~key:"doc" in
    ignore
      (Fs.replicate fs ~rng ~overloaded:(Rng.pick_list rng holders) ~key:"doc")
  done;
  let copies = Fs.copies fs ~key:"doc" in
  Alcotest.(check bool) "several copies" true (copies > 3);
  let v = ok (Fs.write fs ~key:"doc" ~data:"v1 content") in
  Alcotest.(check int) "bumped" 1 v;
  (* Every live node reads the new content. *)
  Status_word.iter_live (Cluster.status cluster) (fun origin ->
      let r = ok (Fs.read fs ~origin ~key:"doc") in
      Alcotest.(check string)
        (Printf.sprintf "read from %d" (Pid.to_int origin))
        "v1 content" r.Fs.data);
  Alcotest.(check (list (pair string Test_support.pid))) "fsck clean" []
    (Fs.fsck fs)

let test_delete () =
  let fs = Fs.create ~m:5 () in
  ignore (ok (Fs.write fs ~key:"tmp" ~data:"x"));
  let removed = Fs.delete fs ~key:"tmp" in
  Alcotest.(check int) "one copy removed" 1 removed;
  Alcotest.(check bool) "gone" true (not (Fs.exists fs ~key:"tmp"));
  Alcotest.(check (list string)) "unregistered" [] (Fs.keys fs);
  (match Fs.read fs ~origin:(pid 2) ~key:"tmp" with
  | Error Fs.Not_found -> ()
  | _ -> Alcotest.fail "expected Not_found");
  Alcotest.(check (list (pair string Test_support.pid))) "fsck clean" []
    (Fs.fsck fs)

let test_replicate_carries_content () =
  let fs = Fs.create ~m:4 () in
  ignore (ok (Fs.write fs ~key:"k" ~data:"payload"));
  let cluster = Fs.cluster fs in
  let target = Cluster.target_of_key cluster "k" in
  let rng = Rng.create ~seed:2 in
  match Fs.replicate fs ~rng ~overloaded:target ~key:"k" with
  | None -> Alcotest.fail "expected placement"
  | Some replica ->
      (* A read landing on the replica returns the same bytes. *)
      let r = ok (Fs.read fs ~origin:replica ~key:"k") in
      Alcotest.(check Test_support.pid) "served locally" replica r.Fs.served_by;
      Alcotest.(check string) "content" "payload" r.Fs.data

let test_rebalance_syncs_blobs () =
  let fs = Fs.create ~m:7 () in
  let cluster = Fs.cluster fs in
  let rng = Rng.create ~seed:3 in
  let catalog_spec =
    Catalog.create (Cluster.status cluster) ~rng ~files:6 ~total:5000.0
      ~spread:Catalog.Uniform
  in
  let catalog = Catalog.files catalog_spec in
  List.iter
    (fun (key, _) ->
      ignore (ok (Fs.write fs ~key ~data:("contents of " ^ key))))
    catalog;
  let outcome = Fs.rebalance fs ~rng ~catalog ~capacity:100.0 in
  Alcotest.(check bool) "balanced" true
    outcome.Lesslog_flow.Multi_balance.balanced;
  Alcotest.(check bool) "replicated" true
    (outcome.Lesslog_flow.Multi_balance.total_replicas > 0);
  Alcotest.(check (list (pair string Test_support.pid))) "fsck clean" []
    (Fs.fsck fs);
  (* All reads everywhere return the right bytes. *)
  List.iter
    (fun (key, _) ->
      Status_word.iter_live (Cluster.status cluster) (fun origin ->
          let r = ok (Fs.read fs ~origin ~key) in
          Alcotest.(check string) key ("contents of " ^ key) r.Fs.data))
    catalog

let test_eviction_keeps_coherence () =
  let fs = Fs.create ~m:7 () in
  let cluster = Fs.cluster fs in
  let rng = Rng.create ~seed:4 in
  let demand = Demand.uniform (Cluster.status cluster) ~total:5000.0 in
  let catalog = [ ("big", demand) ] in
  ignore (ok (Fs.write fs ~key:"big" ~data:"blob"));
  ignore (Fs.rebalance fs ~rng ~catalog ~capacity:100.0);
  let before = Fs.copies fs ~key:"big" in
  let decayed = [ ("big", Demand.scale demand ~factor:0.05) ] in
  let removed = Fs.evict_cold fs ~catalog:decayed ~capacity:100.0 ~min_rate:10.0 in
  Alcotest.(check bool) "evicted" true (removed > 0);
  Alcotest.(check int) "copies accounted" (before - removed)
    (Fs.copies fs ~key:"big");
  Alcotest.(check (list (pair string Test_support.pid))) "fsck clean" []
    (Fs.fsck fs)

let test_membership_churn_with_sync () =
  (* Raw cluster surgery (join/leave) moves metadata; sync_blobs repairs
     content placement and fsck then passes. *)
  let fs = Fs.create ~m:5 () in
  let cluster = Fs.cluster fs in
  let rng = Rng.create ~seed:5 in
  List.iter
    (fun i -> ignore (ok (Fs.write fs ~key:(Printf.sprintf "f%d" i) ~data:"d")))
    [ 1; 2; 3; 4 ];
  for _ = 1 to 10 do
    let status = Cluster.status cluster in
    if Rng.bool rng && Status_word.live_count status > 4 then (
      match Status_word.random_live status rng with
      | Some p -> ignore (Self_org.leave cluster p)
      | None -> ())
    else
      match Status_word.random_dead status rng with
      | Some p -> ignore (Self_org.join cluster p)
      | None -> ()
  done;
  ignore (Fs.sync_blobs fs);
  Alcotest.(check (list (pair string Test_support.pid))) "fsck clean" []
    (Fs.fsck fs);
  List.iter
    (fun i ->
      let key = Printf.sprintf "f%d" i in
      Status_word.iter_live (Cluster.status cluster) (fun origin ->
          let r = ok (Fs.read fs ~origin ~key) in
          Alcotest.(check string) key "d" r.Fs.data))
    [ 1; 2; 3; 4 ]

let test_bytes_stored () =
  let fs = Fs.create ~m:4 () in
  ignore (ok (Fs.write fs ~key:"k" ~data:"12345"));
  let cluster = Fs.cluster fs in
  let target = Cluster.target_of_key cluster "k" in
  Alcotest.(check int) "five bytes" 5 (Fs.bytes_stored fs target);
  Alcotest.(check int) "elsewhere empty" 0
    (Fs.bytes_stored fs (pid ((Pid.to_int target + 1) mod 16)))

let test_write_empty_system () =
  let fs = Fs.create ~m:3 ~live:[] () in
  match Fs.write fs ~key:"k" ~data:"d" with
  | Error Fs.No_live_node -> ()
  | _ -> Alcotest.fail "expected No_live_node"

let prop_random_fs_workout =
  Test_support.qcheck_case ~count:60 ~name:"random write/read/delete stays coherent"
    QCheck2.Gen.(
      int_range 3 6 >>= fun m ->
      int_range 0 1_000_000 >>= fun seed ->
      int_range 1 20 >>= fun steps -> return (m, seed, steps))
    (fun (m, seed, steps) ->
      let fs = Fs.create ~m () in
      let rng = Rng.create ~seed in
      let keys = [| "a"; "b"; "c" |] in
      let ok = ref true in
      for _ = 1 to steps do
        let key = Rng.pick rng keys in
        match Rng.int rng 3 with
        | 0 ->
            (match Fs.write fs ~key ~data:(Printf.sprintf "%d" (Rng.int rng 100)) with
            | Ok _ -> ()
            | Error _ -> ok := false)
        | 1 ->
            let origin =
              Option.get
                (Status_word.random_live (Cluster.status (Fs.cluster fs)) rng)
            in
            (match Fs.read fs ~origin ~key with
            | Ok _ | Error Fs.Not_found -> ()
            | Error _ -> ok := false)
        | _ -> ignore (Fs.delete fs ~key)
      done;
      !ok && Fs.fsck fs = [])

let () =
  Alcotest.run "fs"
    [
      ( "basic",
        [
          Alcotest.test_case "write/read roundtrip" `Quick test_write_read_roundtrip;
          Alcotest.test_case "read missing" `Quick test_read_missing;
          Alcotest.test_case "overwrite everywhere" `Quick
            test_overwrite_bumps_version_everywhere;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "replica carries content" `Quick
            test_replicate_carries_content;
          Alcotest.test_case "bytes stored" `Quick test_bytes_stored;
          Alcotest.test_case "empty system" `Quick test_write_empty_system;
        ] );
      ( "management",
        [
          Alcotest.test_case "rebalance syncs blobs" `Quick
            test_rebalance_syncs_blobs;
          Alcotest.test_case "eviction coherence" `Quick
            test_eviction_keeps_coherence;
          Alcotest.test_case "churn + sync" `Quick test_membership_churn_with_sync;
        ] );
      ("properties", [ prop_random_fs_workout ]);
    ]
