(** Per-node local storage.

    Distinguishes the two file categories of Section 5.2: an {e inserted}
    file is the original copy placed by (ADVANCED)INSERTFILE; a
    {e replicated} file was copied in by REPLICATEFILE from an overloaded
    node. Leaving nodes discard replicas but must re-insert their inserted
    files. Every copy carries a version (for UPDATEFILE) and an access
    counter (for counter-based eviction). *)

type origin = Inserted | Replicated

val pp_origin : Format.formatter -> origin -> unit

type tier = Replicated_full | Coded of { index : int; k : int; r : int }
(** Storage class of a copy. [Replicated_full] is a whole-file copy
    (the only tier before the cold tier existed); [Coded] marks a
    single Reed-Solomon fragment — [index] of the [k + r] fragments of
    a [(k, r)] code — stored under a fragment key derived from the
    base key. Coded entries are never touched by counter-based
    eviction; their lifecycle belongs to the demote/promote/repair
    paths in [Ops]. *)

val pp_tier : Format.formatter -> tier -> unit

type entry = {
  key : string;
  origin : origin;
  tier : tier;
  mutable version : int;
  counter : Access_counter.t;
}

type t

val create : unit -> t

val set_observer : t -> (string -> bool -> unit) -> unit
(** [set_observer t f] registers the single change observer: [f key true]
    fires after every {!add} and [f key false] after every removal that
    actually dropped a copy ({!remove}, {!drop_replicas},
    {!evict_cold_replicas}). Notifications are idempotent with respect to
    holding — an [add] of an already-held key still fires [f key true] —
    so observers maintaining an index must treat them as "now holds" /
    "now does not hold" statements, not as deltas. {!Cluster} uses this to
    keep a per-key holder bitset exact without scanning stores. *)

val add :
  ?tier:tier ->
  t ->
  key:string ->
  origin:origin ->
  version:int ->
  now:float ->
  unit
(** Store a copy ([tier] defaults to [Replicated_full]). Re-adding an
    existing key keeps the entry but upgrades its origin to [Inserted]
    if either is inserted, raises the stored version to [version] if
    newer, and takes the new call's [tier]. *)

val remove : t -> key:string -> unit
val holds : t -> key:string -> bool
val find : t -> key:string -> entry option
val version : t -> key:string -> int option
val origin : t -> key:string -> origin option

val record_access : t -> key:string -> now:float -> unit
(** Bump the access counter; no-op when the key is absent. *)

val set_version : t -> key:string -> version:int -> unit
(** No-op when the key is absent. *)

val tier : t -> key:string -> tier option

val keys : t -> string list
val inserted_keys : t -> string list
val replicated_keys : t -> string list

val coded_keys : t -> string list
(** Keys of the [Coded]-tier entries (fragment keys), sorted. *)

val size : t -> int

val demote_to_replica : t -> key:string -> unit
(** Turn an inserted copy into a plain replica — used when the inserted
    copy migrates to a (re)joined node and the old holder keeps serving a
    non-authoritative copy. No-op when the key is absent. *)

val drop_replicas : t -> string list
(** Remove every replicated copy (a voluntarily leaving node); returns the
    dropped keys. *)

val evict_cold_replicas :
  ?survivors:(string -> int) ->
  ?min_survivors:int ->
  t ->
  now:float ->
  min_rate:float ->
  string list
(** The counter-based mechanism: remove replicated (never inserted,
    never coded) copies whose estimated access rate fell below
    [min_rate]; returns the evicted keys.

    When every live holder of a key is a below-rate replica — the
    inserted copy's node is down — unguarded eviction can drop the
    last live copy cluster-wide. [survivors] reports the current
    cluster-wide live copy count for a key and [min_survivors] is the
    floor it must stay above: a copy is only removed while
    [survivors key > min_survivors], re-checked before each removal so
    concurrent evictions on other nodes (reflected through the
    observer-maintained index backing [survivors]) are seen. Defaults
    ([survivors = fun _ -> max_int], [min_survivors = 0]) preserve the
    historical local-only behaviour. *)

val iter : t -> (entry -> unit) -> unit
