(** Message-level simulation of a complete LessLog deployment.

    Where {!Lesslog_flow} solves the steady state in closed form (and
    generates the paper's figures), this simulator plays the system out
    event by event: Poisson request arrivals at each node, per-hop network
    latency, per-node overload detection from a decayed serve-rate
    estimator (the node's own observation — still no client-access logs),
    replica pushes that take time to arrive, and optional churn events.
    The integration tests check that both engines agree on replica counts;
    this engine additionally yields latency and hop distributions and
    convergence behaviour that the fluid solver cannot express. *)

open Lesslog_id
module Histogram = Lesslog_metrics.Histogram
module Timeseries = Lesslog_metrics.Timeseries

type eviction = {
  period : float;  (** How often each node reconsiders its replicas. *)
  min_rate : float;
      (** Locally-estimated accesses/s below which a replica is dropped. *)
}

type config = {
  capacity : float;  (** Requests/s a node serves without overload. *)
  detection_tau : float;
      (** Time constant of the serve-rate estimator (seconds). *)
  cooldown : float;
      (** Minimum time between two replications triggered by the same
          node. *)
  latency : Lesslog_net.Latency.t;
  loss : float;  (** Per-message drop probability. *)
  eviction : eviction option;
      (** When set, run the paper's counter-based replica removal: each
          node periodically drops replicated copies whose decayed access
          counter estimates fewer than [min_rate] accesses/s — a purely
          local, logless decision. *)
}

val default_config : config
(** capacity 100, tau 2 s, cooldown 0.5 s, default latency, no loss, no
    eviction. *)

type churn_action = Join of Pid.t | Leave of Pid.t | Fail of Pid.t

type churn_event = { at : float; action : churn_action }

type result = {
  served : int;
  faults : int;  (** Requests whose path met no copy. *)
  latencies : Histogram.t;  (** Request completion time, seconds. *)
  hops : Histogram.t;  (** Forwarding hops per served request. *)
  replicas_created : int;
  replicas_evicted : int;
      (** Replicas removed by the counter-based mechanism (0 unless
          [config.eviction] is set). *)
  replica_timeline : Timeseries.t;  (** Copies of the key over time. *)
  last_replication : float option;
      (** When the system stopped creating replicas — convergence. *)
  messages : int;  (** Total overlay messages. *)
  control_messages : int;
      (** Status-word broadcasts triggered by churn events (one message
          per live node per event, Section 5). *)
  file_transfers : int;
      (** Files relocated by the self-organized mechanism (join
          copy-backs, leave re-inserts, failure recoveries). *)
  overloaded_at_end : int;
      (** Nodes whose estimated serve rate still exceeded capacity when
          the run ended. *)
  events : int;
      (** Engine events executed — the throughput denominator for
          events/sec benchmarks. *)
}

(** Both entry points accept an optional [sink] receiving a
    {!Lesslog_trace.Trace.Event.t} for every served/faulted request,
    replica push, eviction and membership change — feed it a
    [Trace.Writer] to record the run.

    With [obs], the run is instrumented: the [des/]* metrics land in
    [obs.registry] (request/served/fault/replication/eviction counters
    filled from the run's own tallies, latency and hop timers backed by
    the result histograms) and every resolved request records a
    ["lookup"] span in [obs.spans] keyed by its wire-level id, carrying
    origin, serving node (absent on a fault) and hop count — emitted in
    one call at resolution, since the wire already carries the issue
    timestamp. Requests still in flight when the engine stops leave no
    span. Each replica push records an instant ["replicate"] span. The
    hot path stays allocation-flat.

    With [substrate], every routing hop, replica placement and churn
    repair is delegated to the given {!Lesslog_substrate.Substrate.t}
    instead of the native direct path: routing through the substrate's
    [next_hop], placement through [Ops.choose_replica_target_via], and
    churn through [Ops.on_membership_via] for
    {!Lesslog_substrate.Substrate.Generic} substrates (the native
    adapter's [Self_organized] membership keeps the Section 5 mechanism,
    so running through {!Lesslog.Substrate_native} is bit-for-bit
    identical to omitting [substrate]). Routes longer than the packed
    hop field (63) — impossible on a conforming substrate — count as
    faults.

    With [policy], replica management switches from LessLog's native
    logless overload trigger to the log-driven weighted dynamic-RF
    competitor ({!Lesslog_policy.Rf_policy}): every issued request is
    logged against its origin node, and at each policy interval the tick
    closes the analysis window and reconciles the key's live copy count
    to the resulting replica factor — deficits fill at the first live
    non-holders in ascending PID order, surpluses shed replicated copies
    (never the inserted original). Enforcement is instantaneous and
    draws no randomness. The policy instance must be fresh for the run
    and sized to the cluster's PID space; inspect it after the run for
    the final RF and classification. Omitting [policy] leaves the event
    stream and RNG draws bit-identical to previous releases.
    @raise Invalid_argument when the policy's accessor population does
    not match the cluster's PID space. *)

val run :
  ?config:config ->
  ?churn:churn_event list ->
  ?sink:(Lesslog_trace.Trace.Event.t -> unit) ->
  ?obs:Lesslog_obs.Obs.t ->
  ?substrate:Lesslog_substrate.Substrate.t ->
  ?policy:Lesslog_policy.Rf_policy.t ->
  rng:Lesslog_prng.Rng.t ->
  cluster:Lesslog.Cluster.t ->
  key:string ->
  demand:Lesslog_workload.Demand.t ->
  duration:float ->
  unit ->
  result
(** Simulate [duration] seconds. The key must already be inserted in the
    cluster. Churn events call the Section 5 mechanism at their scheduled
    times (joins/leaves/failures); request arrivals stop at nodes that die
    and never start at nodes absent from the initial demand. *)

val run_scenario :
  ?config:config ->
  ?churn:churn_event list ->
  ?sink:(Lesslog_trace.Trace.Event.t -> unit) ->
  ?obs:Lesslog_obs.Obs.t ->
  ?substrate:Lesslog_substrate.Substrate.t ->
  ?policy:Lesslog_policy.Rf_policy.t ->
  rng:Lesslog_prng.Rng.t ->
  cluster:Lesslog.Cluster.t ->
  key:string ->
  scenario:Lesslog_workload.Scenario.t ->
  unit ->
  result
(** Like {!run} but with a time-varying workload: each scenario phase
    drives its own arrival processes. With [config.eviction] set this
    plays the full flash-crowd lifecycle: replicas grow at the peak and
    the counter-based mechanism trims them when the crowd disperses. *)
