module Rng = Lesslog_prng.Rng

type zone = { lo : float array; hi : float array }

type t = {
  d : int;
  zones : zone array;
  neighbors : int array array;
}

(* --- Torus geometry ----------------------------------------------------- *)

let axis_distance a b =
  let delta = Float.abs (a -. b) in
  Float.min delta (1.0 -. delta)

(* Distance from a coordinate to an interval [lo, hi) on the unit circle. *)
let axis_rect_distance x ~lo ~hi =
  if x >= lo && x < hi then 0.0
  else Float.min (axis_distance x lo) (axis_distance x hi)

let rect_distance d zone point =
  let acc = ref 0.0 in
  for i = 0 to d - 1 do
    let dist = axis_rect_distance point.(i) ~lo:zone.lo.(i) ~hi:zone.hi.(i) in
    acc := !acc +. (dist *. dist)
  done;
  sqrt !acc

let center_distance d zone point =
  let acc = ref 0.0 in
  for i = 0 to d - 1 do
    let c = (zone.lo.(i) +. zone.hi.(i)) /. 2.0 in
    let dist = axis_distance point.(i) c in
    acc := !acc +. (dist *. dist)
  done;
  sqrt !acc

let contains zone point =
  let ok = ref true in
  Array.iteri
    (fun i x -> if x < zone.lo.(i) || x >= zone.hi.(i) then ok := false)
    point;
  !ok

(* Intervals abut on the circle: one's end is the other's start (0 and 1
   identified). *)
let abuts ~alo:_ ~ahi ~blo ~bhi:_ = Float.abs (ahi -. blo) < 1e-12
let wraps ~ahi ~blo = ahi >= 1.0 -. 1e-12 && blo <= 1e-12

let axis_adjacent (alo, ahi) (blo, bhi) =
  abuts ~alo ~ahi ~blo ~bhi || abuts ~alo:blo ~ahi:bhi ~blo:alo ~bhi:ahi
  || wraps ~ahi ~blo || wraps ~ahi:bhi ~blo:alo

let axis_overlaps (alo, ahi) (blo, bhi) =
  Float.min ahi bhi -. Float.max alo blo > 1e-12

let zones_adjacent d a b =
  (* Exactly one axis abutting, all others overlapping. *)
  let abutting = ref 0 and overlapping = ref 0 in
  for i = 0 to d - 1 do
    let ia = (a.lo.(i), a.hi.(i)) and ib = (b.lo.(i), b.hi.(i)) in
    if axis_overlaps ia ib then incr overlapping
    else if axis_adjacent ia ib then incr abutting
  done;
  !abutting = 1 && !overlapping = d - 1

(* --- Construction -------------------------------------------------------- *)

let split_zone z =
  (* Split along the longest side at its midpoint. *)
  let d = Array.length z.lo in
  let axis = ref 0 and best = ref 0.0 in
  for i = 0 to d - 1 do
    let len = z.hi.(i) -. z.lo.(i) in
    if len > !best then begin
      best := len;
      axis := i
    end
  done;
  let mid = (z.lo.(!axis) +. z.hi.(!axis)) /. 2.0 in
  let lower = { lo = Array.copy z.lo; hi = Array.copy z.hi } in
  let upper = { lo = Array.copy z.lo; hi = Array.copy z.hi } in
  lower.hi.(!axis) <- mid;
  upper.lo.(!axis) <- mid;
  (lower, upper)

let create ~rng ~n ~d =
  if n < 1 then invalid_arg "Can.create: n";
  if d < 1 || d > 6 then invalid_arg "Can.create: d";
  let zones = ref [| { lo = Array.make d 0.0; hi = Array.make d 1.0 } |] in
  for _ = 2 to n do
    let point = Array.init d (fun _ -> Rng.float rng 1.0) in
    let owner = ref 0 in
    Array.iteri (fun i z -> if contains z point then owner := i) !zones;
    let lower, upper = split_zone !zones.(!owner) in
    !zones.(!owner) <- lower;
    zones := Array.append !zones [| upper |]
  done;
  let zones = !zones in
  let neighbors =
    Array.mapi
      (fun i a ->
        let acc = ref [] in
        Array.iteri
          (fun j b -> if i <> j && zones_adjacent d a b then acc := j :: !acc)
          zones;
        Array.of_list (List.rev !acc))
      zones
  in
  { d; zones; neighbors }

let node_count t = Array.length t.zones
let dimension t = t.d

let owner_of t point =
  let owner = ref (-1) in
  Array.iteri (fun i z -> if contains z point then owner := i) t.zones;
  if !owner < 0 then invalid_arg "Can.owner_of: point outside torus";
  !owner

type lookup_result = { owner : int; hops : int }

let lookup t ~from ~target =
  if from < 0 || from >= node_count t then invalid_arg "Can.lookup: from";
  Array.iter
    (fun x -> if x < 0.0 || x >= 1.0 then invalid_arg "Can.lookup: target")
    target;
  let visited = Hashtbl.create 32 in
  let rec route current hops =
    if contains t.zones.(current) target then { owner = current; hops }
    else begin
      Hashtbl.replace visited current ();
      let best = ref None in
      Array.iter
        (fun j ->
          if not (Hashtbl.mem visited j) then begin
            let dist = rect_distance t.d t.zones.(j) target in
            let tie = center_distance t.d t.zones.(j) target in
            match !best with
            | Some (_, bd, bt) when (bd, bt) <= (dist, tie) -> ()
            | _ -> best := Some (j, dist, tie)
          end)
        t.neighbors.(current);
      match !best with
      | Some (j, _, _) -> route j (hops + 1)
      | None ->
          (* All neighbours visited: routing failed (cannot happen on a
             well-formed CAN; surface it rather than loop). *)
          { owner = current; hops }
    end
  in
  route from 0

let neighbors_of t i =
  if i < 0 || i >= node_count t then invalid_arg "Can.neighbors_of";
  Array.to_list t.neighbors.(i)

let contains_point t i point =
  if i < 0 || i >= node_count t then invalid_arg "Can.contains_point";
  contains t.zones.(i) point

(* Nearest live zone to a point by (rect_distance, center_distance, index)
   — the deterministic live owner used when the zone containing the point
   is dead. Scans every zone, which is fine at simulation scale. *)
let live_owner_of t ~target ~alive =
  let best = ref None in
  Array.iteri
    (fun j z ->
      if alive j then begin
        let key = (rect_distance t.d z target, center_distance t.d z target, j) in
        match !best with
        | Some (_, bk) when bk <= key -> ()
        | _ -> best := Some (j, key)
      end)
    t.zones;
  Option.map fst !best

(* Stateless per-hop greedy step: forward to the live neighbour whose zone
   is strictly closer to [target] under the lexicographic
   (rect_distance, center_distance) key than the current zone. The strict
   decrease makes any route through repeated [next_hop_toward] calls
   terminate without a visited set; [None] is both "terminal owner" and
   "greedy dead end" (CAN does not guarantee delivery around dead zones —
   callers must treat a non-owning terminal as a failed route). *)
let next_hop_toward t ~from ~target ~alive =
  if from < 0 || from >= node_count t then invalid_arg "Can.next_hop_toward";
  let here =
    (rect_distance t.d t.zones.(from) target,
     center_distance t.d t.zones.(from) target)
  in
  if contains t.zones.(from) target then None
  else begin
    let best = ref None in
    Array.iter
      (fun j ->
        if alive j then begin
          let key =
            (rect_distance t.d t.zones.(j) target,
             center_distance t.d t.zones.(j) target)
          in
          if key < here then
            match !best with
            | Some (_, bk, bj) when (bk, bj) <= (key, j) -> ()
            | _ -> best := Some (j, key, j)
        end)
      t.neighbors.(from);
    match !best with Some (j, _, _) -> Some j | None -> None
  end

let random_lookup t ~rng =
  let from = Rng.int rng (node_count t) in
  let target = Array.init t.d (fun _ -> Rng.float rng 1.0) in
  lookup t ~from ~target

let expected_hops ~n ~d =
  float_of_int d /. 4.0 *. (float_of_int n ** (1.0 /. float_of_int d))

let mean_neighbors t =
  let total = Array.fold_left (fun acc ns -> acc + Array.length ns) 0 t.neighbors in
  float_of_int total /. float_of_int (node_count t)
