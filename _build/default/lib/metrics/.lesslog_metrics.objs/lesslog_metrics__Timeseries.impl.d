lib/metrics/timeseries.ml: Array List
