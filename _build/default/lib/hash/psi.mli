(** The paper's ψ: a hash mapping a file's unique name to a target
    identifier in [\[0, 2^m)] (Section 2.1). *)

type t

val create : m:int -> t
(** ψ for an [m]-bit identifier space. *)

val m : t -> int

val target : t -> string -> int
(** [target t key] is ψ(key) ∈ [\[0, 2^m)]. Deterministic across runs. *)
