lib/workload/demand.ml: Array Float Lesslog_id Lesslog_membership Lesslog_prng Params Pid
