let render ?(width = 50) ?title ?(unit_label = "") rows =
  let buf = Buffer.create 1024 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  if rows = [] then Buffer.add_string buf "(no data)\n"
  else begin
    let label_width =
      List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
    in
    let top = List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 rows in
    List.iter
      (fun (label, value) ->
        let value = Float.max 0.0 value in
        let cells =
          if top <= 0.0 then 0
          else int_of_float (Float.round (value /. top *. float_of_int width))
        in
        Buffer.add_string buf
          (Printf.sprintf "%-*s |%s%s %g%s\n" label_width label
             (String.make cells '#')
             (String.make (width - cells) ' ')
             value unit_label))
      rows
  end;
  Buffer.contents buf

let of_histogram ?width ?title ~bucket_width histogram =
  let rows =
    List.map
      (fun (lo, count) ->
        (Printf.sprintf "[%g, %g)" lo (lo +. bucket_width), float_of_int count))
      (Lesslog_metrics.Histogram.buckets histogram ~width:bucket_width)
  in
  render ?width ?title rows
