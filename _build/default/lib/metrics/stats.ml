type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable total : float;
  mutable minv : float;
  mutable maxv : float;
}

let create () =
  { n = 0; mean = 0.0; m2 = 0.0; total = 0.0; minv = infinity; maxv = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  t.total <- t.total +. x;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.minv then t.minv <- x;
  if x > t.maxv then t.maxv <- x

let count t = t.n
let total t = t.total
let mean t = if t.n = 0 then 0.0 else t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int t.n
let stddev t = sqrt (variance t)
let min_value t = t.minv
let max_value t = t.maxv

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else begin
    let n = a.n + b.n in
    let fa = float_of_int a.n and fb = float_of_int b.n in
    let delta = b.mean -. a.mean in
    let mean = a.mean +. (delta *. fb /. float_of_int n) in
    let m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. float_of_int n) in
    {
      n;
      mean;
      m2;
      total = a.total +. b.total;
      minv = Float.min a.minv b.minv;
      maxv = Float.max a.maxv b.maxv;
    }
  end

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.4g sd=%.4g min=%.4g max=%.4g" t.n (mean t)
    (stddev t) t.minv t.maxv
