(* Trace analysis: record everything the event-driven simulator does, then
   analyse the trace offline.

   A flash crowd with churn runs against a 128-node system; every served
   request, replica push, eviction and membership change lands in a trace.
   We then reload the trace and reconstruct the story: hop distribution,
   the replication burst, and when the counter-based mechanism cleaned up.

   Run with: dune exec examples/trace_analysis.exe *)

open Lesslog_id
module Trace = Lesslog_trace.Trace
module Event = Lesslog_trace.Trace.Event
module Des_sim = Lesslog_des.Des_sim
module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Scenario = Lesslog_workload.Scenario
module Bars = Lesslog_report.Bars
module Histogram = Lesslog_metrics.Histogram
module Rng = Lesslog_prng.Rng

let () =
  (* --- Record ---------------------------------------------------------- *)
  let params = Params.create ~m:7 () in
  let cluster = Cluster.create params in
  let key = "stream/segment-042" in
  ignore (Ops.insert cluster ~key);
  let rng = Rng.create ~seed:99 in
  let scenario =
    Scenario.flash_crowd (Cluster.status cluster) ~rng ~peak:2500.0 ~calm:120.0
      ~peak_duration:30.0 ~calm_duration:60.0
  in
  let churn =
    Lesslog_des.Churn_trace.generate ~rng
      ~live:(Lesslog_membership.Status_word.live_pids (Cluster.status cluster))
      {
        Lesslog_des.Churn_trace.default with
        mean_session = 200.0;
        mean_downtime = 60.0;
        duration = Scenario.total_duration scenario;
      }
  in
  let buf = Buffer.create (1 lsl 20) in
  let writer = Trace.Writer.to_buffer buf in
  let config =
    {
      Des_sim.default_config with
      eviction = Some { Des_sim.period = 5.0; min_rate = 4.0 };
    }
  in
  let _result =
    Des_sim.run_scenario ~config ~churn ~sink:(Trace.Writer.emit writer) ~rng
      ~cluster ~key ~scenario ()
  in
  Trace.Writer.close writer;
  Printf.printf "recorded %d trace events\n\n" (Trace.Writer.count writer);

  (* --- Replay ----------------------------------------------------------- *)
  let events =
    match Trace.read_string (Buffer.contents buf) with
    | Ok e -> e
    | Error msg -> failwith msg
  in
  let s = Trace.summarize events in
  Printf.printf
    "trace summary: %d requests (%d faults), %d replications, %d evictions, \
     %d membership changes over %.0f s\n\n"
    s.Trace.requests s.Trace.faults s.Trace.replications s.Trace.evictions
    s.Trace.membership_changes s.Trace.span;

  (* Hop distribution of served requests. *)
  let hops = Histogram.create () in
  List.iter
    (function
      | Event.Request { server = Some _; hops = h; _ } -> Histogram.add_int hops h
      | _ -> ())
    events;
  print_endline
    (Bars.of_histogram ~title:"hops per served request" ~bucket_width:1.0 hops);

  (* Replication and eviction activity per 10-second window. *)
  let window = 10.0 in
  let windows = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let bump kind =
        let w = int_of_float (Event.time e /. window) in
        let reps, evs =
          Option.value ~default:(0, 0) (Hashtbl.find_opt windows w)
        in
        Hashtbl.replace windows w
          (match kind with
          | `Rep -> (reps + 1, evs)
          | `Ev -> (reps, evs + 1))
      in
      match e with
      | Event.Replicate _ -> bump `Rep
      | Event.Evict _ -> bump `Ev
      | _ -> ())
    events;
  let rows =
    Hashtbl.fold (fun w v acc -> (w, v) :: acc) windows []
    |> List.sort compare
    |> List.map (fun (w, (reps, evs)) ->
           ( Printf.sprintf "t=%3.0f..%3.0fs"
               (float_of_int w *. window)
               ((float_of_int w +. 1.) *. window),
             (reps, evs) ))
  in
  print_endline "replications per window:";
  print_endline
    (Bars.render (List.map (fun (l, (r, _)) -> (l, float_of_int r)) rows));
  print_endline "evictions per window:";
  print_endline
    (Bars.render (List.map (fun (l, (_, e)) -> (l, float_of_int e)) rows));

  (* The arc of the story, in one sentence each. *)
  let first_rep =
    List.find_map
      (function Event.Replicate { at; _ } -> Some at | _ -> None)
      events
  in
  let first_ev =
    List.find_map
      (function Event.Evict { at; _ } -> Some at | _ -> None)
      events
  in
  (match first_rep with
  | Some t -> Printf.printf "first replica pushed at t=%.2fs (crowd arrives)\n" t
  | None -> print_endline "no replication happened");
  match first_ev with
  | Some t -> Printf.printf "first eviction at t=%.2fs (crowd gone)\n" t
  | None -> print_endline "no eviction happened"
