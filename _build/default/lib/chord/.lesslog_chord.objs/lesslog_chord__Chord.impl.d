lib/chord/chord.ml: Array Hashtbl Lesslog_id List Params Pid
