(** Domain-parallel event-driven simulator of the fault-tolerant model:
    one shard per binomial subtree (paper Section 4) on a
    {!Lesslog_sim.Sharded_engine}, deterministic at any domain count.

    The Section 4 protocol is nearly subtree-local — insertion places one
    copy per subtree, lookups climb alive ancestors within the origin's
    subtree, replicas go to subtree children — so each of the [2^b]
    subtrees becomes a shard owning all of its nodes' mutable state
    (holder bits over subtree VIDs, rate estimators, cooldowns,
    histograms, span sink, RNG stream, FNV digest). The only cross-shard
    traffic is a faulting request migrating to a sibling subtree and the
    replies it earns; both ride sampled network latency, whose
    distribution minimum is the engine's lookahead.

    Determinism: shard count and shard ownership are fixed by [b], not
    by [domains]; per-shard RNG streams are derived from [seed] and the
    subtree id; churn runs as sequential barrier globals. The result —
    including {!result.digest} — is bit-identical for any [domains],
    including 1. Contrast {!Des_sim}, the sequential single-tree
    simulator with the richer feature set (substrates, eviction, traces,
    multi-phase scenarios) and the pinned golden digest. *)

open Lesslog_id
module Latency = Lesslog_net.Latency
module Histogram = Lesslog_metrics.Histogram
module Demand = Lesslog_workload.Demand
module Obs = Lesslog_obs.Obs

type config = {
  capacity : float;  (** Requests/s one node serves before replicating. *)
  detection_tau : float;  (** Access-counter decay constant, seconds. *)
  cooldown : float;  (** Seconds between replications off one node. *)
  latency : Latency.t;
      (** Per-hop delay; its minimum must be positive when [b > 0] — it
          is the conservative lookahead. *)
  loss : float;  (** Per-message drop probability. *)
}

val default_config : config
(** Matches {!Des_sim.default_config} (no eviction). *)

type result = {
  served : int;
  faults : int;
  migrations : int;  (** Requests handed to a sibling subtree. *)
  requests : int;
  latencies : Histogram.t;  (** Merged across shards in shard order. *)
  hops : Histogram.t;
  replicas_created : int;
  replicas_end : int;  (** Copies held across all subtrees at the end. *)
  messages : int;
  control_messages : int;
  file_transfers : int;
  events : int;
  epochs : int;  (** Epoch windows of the sharded engine. *)
  phases : int;
      (** Pool dispatches; [epochs / phases] is the fusion factor. *)
  cross_sends : int;  (** Mailbox messages between shards. *)
  digest : int;
      (** FNV fold over every handled event of every shard, combined in
          shard order — the domain-count-invariance witness. *)
  cold : Des_sim.cold_stats option;
      (** Cold-tier transitions and the byte ledger; [Some] iff the run
          was given a [cold_tier] (same semantics as
          {!Des_sim.result.cold}). *)
}

type churn_action = Join of Pid.t | Leave of Pid.t | Fail of Pid.t

type churn_event = { at : float; action : churn_action }

val run :
  ?config:config ->
  ?churn:churn_event list ->
  ?faults:Lesslog_workload.Faults.plan ->
  ?obs:Obs.t ->
  ?policy:Lesslog_policy.Rf_policy.t ->
  ?cold_tier:Des_sim.cold_tier ->
  ?domains:int ->
  ?fuse:bool ->
  seed:int ->
  params:Params.t ->
  key:string ->
  demand:Demand.t ->
  duration:float ->
  unit ->
  result
(** Simulate [duration] seconds of Poisson demand against one file in a
    [2^m]-slot system of [2^b] subtrees, all slots initially live, the
    file pre-inserted per ADVANCEDINSERTFILE. [churn] events run as
    barrier globals (a {!Leave} relocates the departing node's copy, a
    {!Fail} loses it and recovers from a sibling subtree while any copy
    survives, a {!Join} lets a new insertion target take the copy over);
    [faults] is a {!Lesslog_workload.Faults.plan} lowered onto the same
    machinery — crashes become [Fail]/[Join] churn, loss bursts become
    barrier globals that raise the drop probability to the maximum of
    the active bursts for their span (partitions are rejected);
    [domains] and [fuse] are purely speed knobs (epoch fusion is on by
    default; [~fuse:false] forces one pool dispatch per epoch). With
    [obs], per-shard span sinks are merged into the bundle in shard
    order and [pdes/*] registry metrics are attributed at the end.

    With [policy], replica management switches from the native logless
    overload trigger to the log-driven weighted dynamic-RF competitor
    ({!Lesslog_policy.Rf_policy}): each shard tallies its own requests
    and accessing origins, and at every policy interval a barrier global
    merges the tallies in shard order, closes the analysis window and
    reconciles the holder bits to the resulting replica factor —
    deficits fill round-robin across subtrees, surpluses shed the
    highest holder VIDs. The whole path is sequential and RNG-free, so
    the digest stays bit-identical at any [domains]; the policy instance
    must be fresh for the run and sized to the PID space. Omitting
    [policy] leaves the golden-digest default path untouched.

    With [cold_tier] (requires [policy]), the erasure-coded cold tier of
    {!Des_sim} runs shard-aware: fragments are one more per-shard bitset
    over subtree-VID slots, seated round-robin across subtrees at the
    insertion targets (so in-subtree climbs terminate on a fragment
    holder), and every tier transition, placement and repair happens
    inside sequential barrier globals — shard handlers only read the
    frozen [coded]/[servable] flags and their own shard's fragment bits,
    so the digest stays bit-identical at any [domains]. Demotion,
    promotion on Hot, churn-driven fragment repair, graceful degradation
    below [k] survivors and the byte ledger all match {!Des_sim}.
    @raise Invalid_argument when [m] exceeds the 24-bit packed origin
    field, [b > 0] with a latency minimum of zero, [faults] contains
    partitions, the policy's accessor population does not match the
    PID space, [cold_tier] is given without [policy], or on invalid
    code/size parameters. *)
