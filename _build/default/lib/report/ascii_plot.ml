let markers = [| '*'; '+'; 'o'; 'x'; '#'; '@'; '%'; '&' |]

let render ?(width = 72) ?(height = 20) ?title ?x_label ?y_label series =
  let points = List.concat_map (fun s -> Array.to_list s.Series.points) series in
  let buf = Buffer.create 4096 in
  (match title with
  | Some t ->
      Buffer.add_string buf t;
      Buffer.add_char buf '\n'
  | None -> ());
  if points = [] then begin
    Buffer.add_string buf "(no data)\n";
    Buffer.contents buf
  end
  else begin
    let xs = List.map fst points and ys = List.map snd points in
    let x_min = List.fold_left Float.min infinity xs in
    let x_max = List.fold_left Float.max neg_infinity xs in
    let y_min = Float.min 0.0 (List.fold_left Float.min infinity ys) in
    let y_max = List.fold_left Float.max neg_infinity ys in
    let y_max = if y_max = y_min then y_min +. 1.0 else y_max in
    let x_max = if x_max = x_min then x_min +. 1.0 else x_max in
    let grid = Array.make_matrix height width ' ' in
    let col x =
      int_of_float
        (Float.round ((x -. x_min) /. (x_max -. x_min) *. float_of_int (width - 1)))
    in
    let row y =
      height - 1
      - int_of_float
          (Float.round
             ((y -. y_min) /. (y_max -. y_min) *. float_of_int (height - 1)))
    in
    List.iteri
      (fun i s ->
        let marker = markers.(i mod Array.length markers) in
        Array.iter
          (fun (x, y) -> grid.(row y).(col x) <- marker)
          s.Series.points)
      series;
    (match y_label with
    | Some l ->
        Buffer.add_string buf l;
        Buffer.add_char buf '\n'
    | None -> ());
    let y_axis_width = 10 in
    Array.iteri
      (fun r line ->
        let y_here =
          y_max -. (float_of_int r /. float_of_int (height - 1) *. (y_max -. y_min))
        in
        let label =
          if r = 0 || r = height - 1 || r = (height - 1) / 2 then
            Printf.sprintf "%*.4g |" (y_axis_width - 2) y_here
          else String.make (y_axis_width - 1) ' ' ^ "|"
        in
        Buffer.add_string buf label;
        Buffer.add_string buf (String.init width (fun c -> line.(c)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (String.make (y_axis_width - 1) ' ');
    Buffer.add_char buf '+';
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    let x_min_s = Printf.sprintf "%.4g" x_min in
    let x_max_s = Printf.sprintf "%.4g" x_max in
    let gap =
      max 1 (width - String.length x_min_s - String.length x_max_s)
    in
    Buffer.add_string buf
      (Printf.sprintf "%*s%s%*s%s\n" y_axis_width "" x_min_s gap "" x_max_s);
    (match x_label with
    | Some l ->
        Buffer.add_string buf (String.make y_axis_width ' ');
        Buffer.add_string buf l;
        Buffer.add_char buf '\n'
    | None -> ());
    Buffer.add_string buf "legend: ";
    List.iteri
      (fun i s ->
        if i > 0 then Buffer.add_string buf "   ";
        Buffer.add_char buf markers.(i mod Array.length markers);
        Buffer.add_char buf ' ';
        Buffer.add_string buf (Series.label s))
      series;
    Buffer.add_char buf '\n';
    Buffer.contents buf
  end
