lib/id/pid.ml: Format Int List Params
