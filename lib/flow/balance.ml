open Lesslog_id
module Packed_bits = Lesslog_bits.Packed_bits
module Cluster = Lesslog.Cluster
module Status_word = Lesslog_membership.Status_word
module File_store = Lesslog_storage.File_store

type outcome = {
  replicas : int;
  iterations : int;
  balanced : bool;
  max_load : float;
  unserved : float;
}

let overloaded_pids ~capacity (loads : Flow.loads) =
  let acc = ref [] in
  Array.iteri
    (fun i rate -> if rate > capacity then acc := (i, rate) :: !acc)
    loads.Flow.serve;
  List.sort (fun (_, a) (_, b) -> Float.compare b a) !acc
  |> List.map (fun (i, _) -> Pid.unsafe_of_int i)

let run ?max_steps ~rng ~cluster ~key ~demand ~capacity ~policy () =
  if capacity <= 0.0 then invalid_arg "Balance.run: capacity";
  let params = Cluster.params cluster in
  let max_steps =
    match max_steps with Some s -> s | None -> 4 * Params.space params
  in
  let tree = Cluster.tree_of_key cluster key in
  let flow = Flow.create tree (Cluster.status cluster) in
  let holders p = Cluster.holds cluster p ~key in
  let replicas = ref 0 and iterations = ref 0 in
  let finished = ref false and balanced = ref false in
  let final_loads = ref (Flow.serve_rates flow ~holders ~demand) in
  while not !finished do
    incr iterations;
    let loads = Flow.serve_rates flow ~holders ~demand in
    final_loads := loads;
    if !iterations > max_steps then finished := true
    else begin
      (* Let the most overloaded node act; when the policy has no
         candidate for it, fall through to the next overloaded node. *)
      let rec try_nodes = function
        | [] ->
            (* Nobody could place a replica. *)
            finished := true;
            balanced := overloaded_pids ~capacity loads = []
        | overloaded :: rest -> (
            match
              Policy.place policy ~rng ~cluster ~flow ~demand ~key ~overloaded
            with
            | Some dest ->
                let version =
                  Option.value ~default:0
                    (File_store.version (Cluster.store cluster overloaded) ~key)
                in
                File_store.add (Cluster.store cluster dest) ~key
                  ~origin:File_store.Replicated ~version ~now:0.0;
                incr replicas
            | None -> try_nodes rest)
      in
      match overloaded_pids ~capacity loads with
      | [] ->
          finished := true;
          balanced := true
      | overloaded -> try_nodes overloaded
    end
  done;
  let max_load = Array.fold_left Float.max 0.0 (!final_loads).Flow.serve in
  {
    replicas = !replicas;
    iterations = !iterations;
    balanced = !balanced;
    max_load;
    unserved = (!final_loads).Flow.unserved;
  }

let loads ~cluster ~key ~demand =
  let tree = Cluster.tree_of_key cluster key in
  let flow = Flow.create tree (Cluster.status cluster) in
  Flow.serve_rates flow ~holders:(fun p -> Cluster.holds cluster p ~key) ~demand

let evict_cold ?(capacity = infinity) ~cluster ~key ~demand ~min_rate () =
  let tree = Cluster.tree_of_key cluster key in
  let flow = Flow.create tree (Cluster.status cluster) in
  let holders p = Cluster.holds cluster p ~key in
  let serve_now () = Flow.serve_rates flow ~holders ~demand in
  let evicted = ref 0 in
  let blocked = Packed_bits.create (Params.space (Cluster.params cluster)) in
  let continue = ref true in
  while !continue do
    let current = serve_now () in
    (* Coldest eligible replica first. Only live holders can qualify, so
       scan them (via the cluster's holder bitset) instead of folding over
       every live node. *)
    let candidate =
      List.fold_left
        (fun acc p ->
          let i = Pid.to_int p in
          let store = Cluster.store cluster p in
          if
            (not (Packed_bits.get blocked i))
            && File_store.origin store ~key = Some File_store.Replicated
            && current.Flow.serve.(i) < min_rate
          then
            match acc with
            | Some (_, rate) when rate <= current.Flow.serve.(i) -> acc
            | _ -> Some (p, current.Flow.serve.(i))
          else acc)
        None
        (Cluster.holders cluster ~key)
    in
    match candidate with
    | None -> continue := false
    | Some (p, _) ->
        let store = Cluster.store cluster p in
        let version = Option.value ~default:0 (File_store.version store ~key) in
        File_store.remove store ~key;
        let after = serve_now () in
        let max_load = Array.fold_left Float.max 0.0 after.Flow.serve in
        if max_load > capacity || after.Flow.unserved > 0.0 then begin
          (* Rolling this copy back keeps the system balanced; never try
             it again. *)
          File_store.add store ~key ~origin:File_store.Replicated ~version
            ~now:0.0;
          Packed_bits.set blocked (Pid.to_int p)
        end
        else incr evicted
  done;
  !evicted

let holder_pids cluster ~key = Cluster.holders cluster ~key
