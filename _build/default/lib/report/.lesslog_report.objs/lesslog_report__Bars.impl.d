lib/report/bars.ml: Buffer Float Lesslog_metrics List Printf String
