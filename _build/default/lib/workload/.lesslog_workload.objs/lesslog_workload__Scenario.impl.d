lib/workload/scenario.ml: Demand List
