lib/des/churn_trace.ml: Des_sim Lesslog_prng List
