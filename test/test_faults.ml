open Lesslog_id
module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Status_word = Lesslog_membership.Status_word
module Demand = Lesslog_workload.Demand
module Faults = Lesslog_workload.Faults
module Fault_sim = Lesslog_des.Fault_sim
module Rpc = Lesslog_net.Rpc
module Retry = Lesslog_net.Retry
module Rng = Lesslog_prng.Rng
module F = Fault_sim

let key = "faults/test-object"

(* Build a cluster, generate a plan (or none), run the scenario. The
   duration floor of 30 s keeps the post-[arrival_stop] tail longer than
   [Retry.max_lifetime] so a clean run always drains to zero pending. *)
let run ?(m = 6) ?(seed = 7) ?(rate = 300.0) ?(duration = 30.0) ?(loss = 0.0)
    ?(crash = 0.0) ?(restart = 0.5) ?(bursts = 0) ?(partitions = 0) ?config ()
    =
  let params = Params.create ~m () in
  let cluster = Cluster.create params in
  ignore (Ops.insert cluster ~key);
  let rng = Rng.create ~seed in
  let demand = Demand.uniform (Cluster.status cluster) ~total:rate in
  let live = Status_word.live_pids (Cluster.status cluster) in
  let plan =
    if crash = 0.0 && bursts = 0 && partitions = 0 then Faults.empty
    else
      Faults.generate ~rng ~live ~duration ~crash_fraction:crash
        ~restart_fraction:restart ~bursts ~partitions ()
  in
  let config =
    match config with
    | Some c -> { c with F.loss }
    | None -> { F.default_config with loss }
  in
  let result = F.run ~config ~plan ~rng ~cluster ~key ~demand ~duration () in
  (cluster, plan, result)

let check_accounted ~msg (r : F.result) =
  Alcotest.(check int)
    (msg ^ ": issued = served + faulted + pending")
    r.F.issued
    (r.F.served + r.F.faulted + r.F.pending_at_end)

(* Satellite: under loss in {0, 0.1, 0.3} every request either serves
   within the retry budget or reports a fault — nothing vanishes. *)
let test_no_silent_loss () =
  List.iter
    (fun loss ->
      let msg = Printf.sprintf "loss %.1f" loss in
      let _, _, r = run ~loss () in
      check_accounted ~msg r;
      Alcotest.(check int) (msg ^ ": drained") 0 r.F.pending_at_end;
      Alcotest.(check bool) (msg ^ ": traffic flowed") true (r.F.served > 0);
      if loss = 0.0 then
        Alcotest.(check int) (msg ^ ": lossless -> no faults") 0 r.F.faulted)
    [ 0.0; 0.1; 0.3 ]

let prop_no_silent_loss =
  let open QCheck2 in
  Test_support.qcheck_case ~count:6 ~name:"issued = served + faulted, drained"
    Gen.(pair (int_range 0 1000) (oneofl [ 0.0; 0.1; 0.3 ]))
    (fun (seed, loss) ->
      let _, _, r = run ~m:5 ~seed ~rate:120.0 ~loss () in
      r.F.issued = r.F.served + r.F.faulted && r.F.pending_at_end = 0)

(* Satellite: retransmission is idempotent at the server. Heavy loss
   forces duplicate deliveries of the same request ID; the dedup table
   absorbs them, so the per-request accounting still balances. *)
let test_retransmission_idempotent () =
  let _, _, r = run ~loss:0.3 ~rate:500.0 () in
  Alcotest.(check bool) "retries happened" true (r.F.retransmissions > 0);
  Alcotest.(check bool) "duplicates reached servers" true
    (r.F.duplicate_serves > 0);
  check_accounted ~msg:"under duplicates" r;
  Alcotest.(check int) "drained" 0 r.F.pending_at_end

(* Satellite: after the last injected disturbance the detector's view
   converges to injected truth. *)
let test_detector_converges () =
  let _, plan, r =
    run ~seed:11 ~loss:0.1 ~crash:0.1 ~restart:0.5 ~duration:40.0 ()
  in
  Alcotest.(check bool) "plan injected crashes" true
    (List.length plan.Faults.crashes > 0);
  Alcotest.(check bool) "crashes executed" true (r.F.crashes > 0);
  (match r.F.convergence with
  | Some s ->
      Alcotest.(check bool)
        (Printf.sprintf "convergence lag %.2fs within run" s)
        true
        (s >= 0.0 && s <= 40.0)
  | None -> Alcotest.fail "detector never reached the agreement target");
  Alcotest.(check bool)
    (Printf.sprintf "final agreement %.3f >= 0.95" r.F.detector_agreement)
    true
    (r.F.detector_agreement >= 0.95)

let test_determinism () =
  let go () = run ~seed:42 ~loss:0.2 ~crash:0.05 ~bursts:1 () in
  let _, _, r1 = go () in
  let _, _, r2 = go () in
  Alcotest.(check int) "issued" r1.F.issued r2.F.issued;
  Alcotest.(check int) "served" r1.F.served r2.F.served;
  Alcotest.(check int) "faulted" r1.F.faulted r2.F.faulted;
  Alcotest.(check int) "suspicions" r1.F.suspicions r2.F.suspicions;
  Alcotest.(check int) "messages" r1.F.messages r2.F.messages

(* False suspicions under a loss burst (no crashes): every suspicion is
   spurious, each live suspicion triggers a migration, and once the burst
   ends the pongs get through again — by the end the status word agrees
   with truth. An aggressive [suspect_after = 2] makes the burst bite. *)
let test_false_suspicions_recover () =
  let config =
    {
      F.default_config with
      heartbeat = { Lesslog_net.Heartbeat.period = 0.5; suspect_after = 2 };
    }
  in
  let _, _, r = run ~config ~seed:3 ~loss:0.0 ~bursts:2 ~duration:40.0 () in
  Alcotest.(check bool) "aggressive detector suspects someone" true
    (r.F.suspicions > 0);
  Alcotest.(check int) "no crashes -> all suspicions spurious"
    r.F.suspicions r.F.spurious_suspicions;
  Alcotest.(check bool) "suspects recover" true
    (r.F.recoveries > 0);
  Alcotest.(check bool)
    (Printf.sprintf "view heals: agreement %.3f" r.F.detector_agreement)
    true
    (r.F.detector_agreement >= 0.95)

let test_plan_generator_bounds () =
  let rng = Rng.create ~seed:19 in
  let live = List.init 64 Pid.unsafe_of_int in
  let duration = 100.0 in
  let plan =
    Faults.generate ~rng ~live ~duration ~crash_fraction:0.1
      ~restart_fraction:0.5 ~bursts:2 ~partitions:1 ()
  in
  Alcotest.(check int) "bursts" 2 (List.length plan.Faults.bursts);
  Alcotest.(check int) "partitions" 1 (List.length plan.Faults.partitions);
  Alcotest.(check bool) "crashes drawn" true
    (List.length plan.Faults.crashes > 0);
  Alcotest.(check bool) "everything settles by 0.75 * duration" true
    (Faults.last_disturbance plan <= 0.75 *. duration +. 1e-9);
  List.iter
    (fun (c : Faults.crash) ->
      Alcotest.(check bool) "crash inside active window" true
        (c.at >= 0.0 && c.at <= 0.75 *. duration);
      match c.restart_at with
      | Some t ->
          Alcotest.(check bool) "restart after crash, before settle" true
            (t > c.at && t <= 0.75 *. duration +. 1e-9)
      | None -> ())
    plan.Faults.crashes;
  Alcotest.(check (list int)) "nobody down before first disturbance" []
    (List.map Pid.to_int (Faults.crashed_at plan ~time:0.0))

(* The ISSUE acceptance criterion, asserted: loss 0.2 with 5% injected
   crashes (plus a loss burst and an asymmetric partition) — >= 99%
   delivered-or-faulted with zero silent losses, and the detector reaches
   >= 95% agreement with injected truth within the measured window. The
   status word is never written by the harness: only Self_org calls
   triggered by heartbeat verdicts move it. *)
let test_acceptance_loss02_crash5pct () =
  let _, plan, r =
    run ~m:7 ~seed:7 ~rate:400.0 ~duration:60.0 ~loss:0.2 ~crash:0.05
      ~bursts:1 ~partitions:1 ()
  in
  Alcotest.(check bool) "crashes injected" true
    (List.length plan.Faults.crashes > 0);
  check_accounted ~msg:"acceptance" r;
  Alcotest.(check int) "zero silently lost" 0 r.F.pending_at_end;
  let resolved = float_of_int (r.F.served + r.F.faulted) in
  Alcotest.(check bool)
    (Printf.sprintf "delivered-or-faulted %.4f >= 0.99"
       (resolved /. float_of_int r.F.issued))
    true
    (resolved >= 0.99 *. float_of_int r.F.issued);
  Alcotest.(check bool)
    (Printf.sprintf "detector agreement %.3f >= 0.95" r.F.detector_agreement)
    true
    (r.F.detector_agreement >= 0.95);
  (match r.F.convergence with
  | Some _ -> ()
  | None -> Alcotest.fail "agreement target never reached after disturbances");
  Alcotest.(check bool) "work happened under faults" true
    (r.F.served > 0 && r.F.retransmissions > 0)

let () =
  Alcotest.run "faults"
    [
      ( "reliability",
        [
          Alcotest.test_case "no silent loss at 0/0.1/0.3" `Slow
            test_no_silent_loss;
          prop_no_silent_loss;
          Alcotest.test_case "retransmission idempotent" `Quick
            test_retransmission_idempotent;
          Alcotest.test_case "deterministic" `Quick test_determinism;
        ] );
      ( "detector",
        [
          Alcotest.test_case "converges to injected truth" `Quick
            test_detector_converges;
          Alcotest.test_case "false suspicions recover" `Slow
            test_false_suspicions_recover;
        ] );
      ( "plans",
        [
          Alcotest.test_case "generator bounds" `Quick
            test_plan_generator_bounds;
        ] );
      ( "acceptance",
        [
          Alcotest.test_case "loss 0.2 + 5% crashes" `Slow
            test_acceptance_loss02_crash5pct;
        ] );
    ]
