open Lesslog_id
module Status_word = Lesslog_membership.Status_word
module Ptree = Lesslog_ptree.Ptree
module Topology = Lesslog_topology.Topology
module Subtrees = Lesslog_topology.Subtrees
module File_store = Lesslog_storage.File_store

let expected_targets cluster ~key =
  let tree = Cluster.tree_of_key cluster key in
  let status = Cluster.status cluster in
  if Params.b (Cluster.params cluster) > 0 then
    Subtrees.insertion_targets tree status
  else
    match Topology.insertion_target tree status with
    | None -> []
    | Some p -> [ p ]

let classify cluster ~at ~key =
  if List.exists (Pid.equal at) (expected_targets cluster ~key) then
    File_store.Inserted
  else File_store.Replicated

let inserted_files cluster ~at =
  File_store.keys (Cluster.store cluster at)
  |> List.filter (fun key -> classify cluster ~at ~key = File_store.Inserted)

(* The live node with the largest VID strictly below [k]'s in [tree] —
   where ADVANCEDINSERTFILE stored files while [k] was absent. *)
let previous_max_live tree status ~below =
  let rec scan vid =
    if vid < 0 then None
    else
      let p = Ptree.pid_of_vid tree (Vid.unsafe_of_int vid) in
      if Status_word.is_live status p then Some p else scan (vid - 1)
  in
  scan (Vid.to_int (Ptree.vid_of_pid tree below) - 1)

let join_candidates cluster ~joining:k =
  let params = Cluster.params cluster in
  if Params.b params > 0 then
    invalid_arg "Locate.join_candidates: b > 0 unsupported";
  let status = Cluster.status cluster in
  if Status_word.is_dead status k then
    invalid_arg "Locate.join_candidates: joiner not registered live";
  let found : (string, Pid.t) Hashtbl.t = Hashtbl.create 8 in
  for r = 0 to Params.mask params do
    let root = Pid.unsafe_of_int r in
    let tree = Cluster.tree_of cluster root in
    (* Where could a file targeting [r] have been stored because of [k]'s
       absence? In [k]'s children list when [k] is the root or is routed
       through; at the previous max-VID live node when [k] just became the
       tree's max-VID live node (Section 5.1). *)
    let sources =
      if Pid.equal k root || Topology.has_live_with_greater_vid tree status k
      then Topology.children_list tree status k
      else
        match previous_max_live tree status ~below:k with
        | Some p -> [ p ]
        | None -> []
    in
    List.iter
      (fun src ->
        let store = Cluster.store cluster src in
        List.iter
          (fun key ->
            if
              Pid.equal (Cluster.target_of_key cluster key) root
              && File_store.origin store ~key = Some File_store.Inserted
              && not (Hashtbl.mem found key)
            then Hashtbl.replace found key src)
          (File_store.keys store))
      sources
  done;
  Hashtbl.fold (fun key src acc -> (key, src) :: acc) found []
  |> List.sort compare
