(** A Chord-style lookup substrate (Stoica et al., SIGCOMM 2001) — the
    related-work DHT the paper cites as the other binomial-bounded lookup
    scheme. Used as the comparison point in the lookup-hop ablation: both
    LessLog's lookup trees and Chord's finger tables resolve in O(log N)
    hops.

    This is the routing layer only (successors and finger tables over a
    static membership snapshot), which is all the ablation needs. *)

open Lesslog_id

type t

val create : Params.t -> live:Pid.t list -> t
(** Build the ring and all finger tables for the live population.
    @raise Invalid_argument on an empty population. *)

val node_count : t -> int

val successor : t -> int -> Pid.t
(** First live node at or clockwise-after an identifier — the owner of
    that identifier. *)

type lookup_result = { owner : Pid.t; hops : int; path : Pid.t list }

val lookup : t -> from:Pid.t -> target:int -> lookup_result
(** Iterative Chord routing: forward to the closest preceding finger until
    the identifier's owner is reached. [hops] counts forwardings; the
    origin resolving locally is 0 hops.
    @raise Invalid_argument when [from] is not in the ring. *)

val finger : t -> Pid.t -> int -> Pid.t
(** [finger t n k] is the k-th finger of node n: successor(n + 2^k).
    For tests. *)

val next_hop : t -> from:Pid.t -> target:int -> Pid.t option
(** One step of {!lookup}'s iterative routing: the node [from] forwards
    to next, or [None] when [from] already owns [target]. Following
    [next_hop] to the fixpoint visits exactly {!lookup}'s path. A [from]
    not in the ring snapshot (stale sender) falls back to its ring
    successor, which still makes progress. *)

val ring_neighbors : t -> Pid.t -> Pid.t list
(** The node's ring successor and predecessor (deduplicated; [\[\]] for a
    singleton ring or an unknown node) — the symmetric neighbor set used
    for neighbor-set replica placement. *)
