open Lesslog_id
module Status_word = Lesslog_membership.Status_word
module Ptree = Lesslog_ptree.Ptree
module Vtree = Lesslog_vtree.Vtree

let find_live_node tree status ~start =
  if Status_word.is_live status start then Some start
  else begin
    let rec scan vid =
      if vid < 0 then None
      else
        let p = Ptree.pid_of_vid tree (Vid.unsafe_of_int vid) in
        if Status_word.is_live status p then Some p else scan (vid - 1)
    in
    scan (Vid.to_int (Ptree.vid_of_pid tree start) - 1)
  end

let insertion_target tree status =
  find_live_node tree status ~start:(Ptree.root tree)

let first_alive_ancestor tree status p =
  let rec climb p =
    match Ptree.parent tree p with
    | None -> None
    | Some q -> if Status_word.is_live status q then Some q else climb q
  in
  climb p

let children_list tree status p =
  (* Expand dead children recursively, then sort by descending VID, which
     the paper specifies and which also orders by descending offspring. *)
  let rec expand acc p =
    List.fold_left
      (fun acc c ->
        if Status_word.is_live status c then c :: acc else expand acc c)
      acc (Ptree.children tree p)
  in
  let live_children = expand [] p in
  List.sort
    (fun a b ->
      Vid.compare (Ptree.vid_of_pid tree b) (Ptree.vid_of_pid tree a))
    live_children

let max_live tree status =
  let rec scan vid =
    if vid < 0 then None
    else
      let p = Ptree.pid_of_vid tree (Vid.unsafe_of_int vid) in
      if Status_word.is_live status p then Some p else scan (vid - 1)
  in
  scan (Params.mask (Ptree.params tree))

let has_live_with_greater_vid tree status p =
  match max_live tree status with
  | None -> false
  | Some g -> Vid.compare (Ptree.vid_of_pid tree g) (Ptree.vid_of_pid tree p) > 0

let live_offspring_count tree status p =
  Status_word.fold_live status ~init:0 ~f:(fun acc q ->
      if (not (Pid.equal q p)) && Ptree.is_ancestor tree ~ancestor:p q then
        acc + 1
      else acc)

let route_next tree status p =
  match first_alive_ancestor tree status p with
  | Some a -> Some a
  | None ->
      if Status_word.is_live status (Ptree.root tree) then None
      else begin
        match insertion_target tree status with
        | Some g when not (Pid.equal g p) -> Some g
        | Some _ | None -> None
      end

let route_path tree status ~origin =
  let rec go acc p =
    match route_next tree status p with
    | None -> List.rev (p :: acc)
    | Some q -> go (p :: acc) q
  in
  go [] origin
