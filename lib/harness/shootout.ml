open Lesslog_id
module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Substrate_native = Lesslog.Substrate_native
module Substrate = Lesslog_substrate.Substrate
module Chord_sub = Lesslog_substrate.Chord_sub
module Pastry_sub = Lesslog_substrate.Pastry_sub
module Can_sub = Lesslog_substrate.Can_sub
module Schedule = Lesslog_check.Schedule
module Des_sim = Lesslog_des.Des_sim
module Fault_sim = Lesslog_des.Fault_sim
module Histogram = Lesslog_metrics.Histogram
module Trace = Lesslog_trace.Trace
module Rng = Lesslog_prng.Rng
module Fnv = Lesslog_hash.Fnv

type row = {
  name : string;
  served : int;
  faults : int;
  availability : float;
  mean_hops : float;
  p50_latency : float;
  p99_latency : float;
  replicas_created : int;
  messages : int;
  file_transfers : int;
  digest : int;
  f_issued : int;
  f_served : int;
  f_faulted : int;
  f_lost_keys : int;
  f_availability : float;
}

type report = {
  m : int;
  seed : int;
  des_schedule : Schedule.t;
  fault_schedule : Schedule.t;
  rows : row list;
  native_digest_match : bool;
}

(* The contenders. [None] is the direct (substrate-less) native path, used
   only for the digest gate. *)
let substrates :
    (string * (Cluster.t -> Substrate.t option)) list =
  [
    ("lesslog", fun cluster -> Some (Substrate_native.of_cluster cluster));
    ( "chord",
      fun cluster ->
        Some
          (Chord_sub.make (Cluster.params cluster) (Cluster.status cluster)
             (Cluster.psi cluster)) );
    ( "pastry",
      fun cluster ->
        Some
          (Pastry_sub.make (Cluster.params cluster) (Cluster.status cluster)
             (Cluster.psi cluster)) );
    ( "can",
      fun cluster ->
        Some (Can_sub.make (Cluster.params cluster) (Cluster.status cluster))
    );
  ]

let fresh_cluster (sch : Schedule.t) make_sub =
  let params = Params.create ~m:sch.m () in
  let cluster = Cluster.create params in
  let sub = make_sub cluster in
  for i = 0 to sch.keys - 1 do
    let key = Schedule.key_of_index i in
    match sub with
    | None -> ignore (Ops.insert cluster ~key)
    | Some s -> ignore (Ops.insert_via s cluster ~key)
  done;
  (cluster, sub)

let run_des (sch : Schedule.t) make_sub =
  let cluster, sub = fresh_cluster sch make_sub in
  let rng = Rng.create ~seed:sch.seed in
  let demand = Schedule.demand sch (Cluster.status cluster) in
  let churn = Schedule.to_churn sch in
  let config = { Des_sim.default_config with capacity = sch.capacity } in
  let buf = Buffer.create 65536 in
  let writer = Trace.Writer.to_buffer buf in
  let r =
    Des_sim.run ~config ~churn
      ~sink:(Trace.Writer.emit writer)
      ?substrate:sub ~rng ~cluster
      ~key:(Schedule.key_of_index 0)
      ~demand ~duration:sch.duration ()
  in
  (r, Fnv.hash63 (Buffer.contents buf))

let run_faults (sch : Schedule.t) make_sub =
  let cluster, sub = fresh_cluster sch make_sub in
  let rng = Rng.create ~seed:sch.seed in
  let demand = Schedule.demand sch (Cluster.status cluster) in
  let plan = Schedule.to_plan sch in
  let config = { Fault_sim.default_config with capacity = sch.capacity } in
  Fault_sim.run ~config ~plan ?substrate:sub ~rng ~cluster
    ~key:(Schedule.key_of_index 0)
    ~demand ~duration:sch.duration ()

let quantile_or_zero h q =
  if Histogram.count h = 0 then 0.0 else Histogram.quantile h q

let make_row name (des : Des_sim.result) digest (f : Fault_sim.result) =
  let resolved = des.Des_sim.served + des.Des_sim.faults in
  {
    name;
    served = des.Des_sim.served;
    faults = des.Des_sim.faults;
    availability =
      (if resolved = 0 then 1.0
       else float_of_int des.Des_sim.served /. float_of_int resolved);
    mean_hops = Histogram.mean des.Des_sim.hops;
    p50_latency = quantile_or_zero des.Des_sim.latencies 0.5;
    p99_latency = quantile_or_zero des.Des_sim.latencies 0.99;
    replicas_created = des.Des_sim.replicas_created;
    messages = des.Des_sim.messages;
    file_transfers = des.Des_sim.file_transfers;
    digest;
    f_issued = f.Fault_sim.issued;
    f_served = f.Fault_sim.served;
    f_faulted = f.Fault_sim.faulted;
    f_lost_keys = f.Fault_sim.lost_keys;
    f_availability =
      (if f.Fault_sim.issued = 0 then 1.0
       else float_of_int f.Fault_sim.served /. float_of_int f.Fault_sim.issued);
  }

let run ?(quick = false) ~seed ~m () =
  let scale (sch : Schedule.t) =
    if quick then { sch with duration = Float.min sch.duration 5.0 } else sch
  in
  let des_schedule = scale (Schedule.generate ~seed ~m ~sim:Schedule.Des) in
  let fault_schedule =
    scale (Schedule.generate ~seed ~m ~sim:Schedule.Faults)
  in
  (* The drift gate: the exact schedule, through the pre-refactor direct
     path. *)
  let _, direct_digest = run_des des_schedule (fun _ -> None) in
  let rows =
    List.map
      (fun (name, make_sub) ->
        let des, digest = run_des des_schedule make_sub in
        let f = run_faults fault_schedule make_sub in
        make_row name des digest f)
      substrates
  in
  let native_digest =
    match rows with r :: _ -> r.digest | [] -> direct_digest
  in
  {
    m;
    seed;
    des_schedule;
    fault_schedule;
    rows;
    native_digest_match = native_digest = direct_digest;
  }

let to_bench report =
  let per_row r =
    let p metric v = (Printf.sprintf "substrates/%s/%s" r.name metric, v) in
    [
      p "served" (float_of_int r.served);
      p "faults" (float_of_int r.faults);
      p "availability" r.availability;
      p "mean_hops" r.mean_hops;
      p "p50_latency_s" r.p50_latency;
      p "p99_latency_s" r.p99_latency;
      p "replicas" (float_of_int r.replicas_created);
      p "messages" (float_of_int r.messages);
      p "file_transfers" (float_of_int r.file_transfers);
      p "fault_issued" (float_of_int r.f_issued);
      p "fault_served" (float_of_int r.f_served);
      p "fault_faulted" (float_of_int r.f_faulted);
      p "fault_lost_keys" (float_of_int r.f_lost_keys);
      p "fault_availability" r.f_availability;
    ]
  in
  [
    ("substrates/m", float_of_int report.m);
    ("substrates/seed", float_of_int report.seed);
    ( "substrates/native_digest_match",
      if report.native_digest_match then 1.0 else 0.0 );
  ]
  @ List.concat_map per_row report.rows

let render report =
  let b = Buffer.create 1024 in
  Printf.bprintf b
    "substrate shootout: m=%d seed=%d  (des %.0fs churn / faults %.0fs \
     detector)\n"
    report.m report.seed report.des_schedule.Schedule.duration
    report.fault_schedule.Schedule.duration;
  Printf.bprintf b
    "%-8s %7s %6s %6s %6s %8s %8s %5s %7s %5s | %7s %7s %6s %5s\n" "overlay"
    "served" "fault" "avail" "hops" "p50(ms)" "p99(ms)" "repl" "msgs" "xfer"
    "f.srvd" "f.fault" "f.avl" "lost";
  List.iter
    (fun r ->
      Printf.bprintf b
        "%-8s %7d %6d %5.1f%% %6.2f %8.2f %8.2f %5d %7d %5d | %7d %7d %5.1f%% \
         %5d\n"
        r.name r.served r.faults (100.0 *. r.availability) r.mean_hops
        (1e3 *. r.p50_latency) (1e3 *. r.p99_latency) r.replicas_created
        r.messages r.file_transfers r.f_served r.f_faulted
        (100.0 *. r.f_availability) r.f_lost_keys)
    report.rows;
  Printf.bprintf b "native digest %s\n"
    (if report.native_digest_match then "MATCH (bit-for-bit with direct path)"
     else "DRIFT — substrate refactor changed native behaviour");
  Buffer.contents b
