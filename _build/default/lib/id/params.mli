(** Identifier-space parameters for a LessLog system.

    [m] is the width of the identifier space (there are [2^m] PID slots;
    the live population N satisfies N ≤ 2^m). [b] is the number of low VID
    bits reserved for the fault-tolerant model's [2^b] subtrees (Section 4);
    [b = 0] disables fault tolerance, matching the paper's evaluation. *)

type t = private { m : int; b : int }

val create : ?b:int -> m:int -> unit -> t
(** @raise Invalid_argument unless [1 <= m <= Bitops.max_width] and
    [0 <= b < m]. *)

val m : t -> int
val b : t -> int

val space : t -> int
(** [2^m], the number of PID slots. *)

val mask : t -> int
(** [2^m - 1], the root VID. *)

val subtree_count : t -> int
(** [2^b]. *)

val subtree_space : t -> int
(** [2^(m-b)], slots per fault-tolerant subtree. *)

val pp : Format.formatter -> t -> unit
