lib/core/ops.mli: Cluster Lesslog_id Lesslog_prng Pid
