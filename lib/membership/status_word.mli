(** The status word (paper Section 5.1): one bit per PID slot indicating
    whether the corresponding node is live. Every live node maintains a
    copy; here it is the authoritative membership view of a simulated
    cluster.

    The bits live in a packed [int]-array bitset
    ({!Lesslog_bits.Packed_bits}), so membership tests are one word load,
    iteration skips dead regions 62 slots at a time, and the topology
    layer can answer "highest live PID below x" with a single popcount /
    floor-log2 word scan.

    Each mutation that actually changes a bit bumps a monotonic {!epoch}.
    Derived structures (the topology cache) record the epoch they were
    built at and rebuild lazily when it moves — the epoch-invalidation
    contract documented in ARCHITECTURE.md. *)

open Lesslog_id

type t

val create : Params.t -> initially_live:bool -> t
(** All [2^m] slots set to [initially_live]. *)

val of_live_list : Params.t -> Pid.t list -> t
(** Only the listed PIDs are live. *)

val copy : t -> t
(** Fresh status word with the same membership; it has its own {!uid} and
    its epoch restarts at 0. *)

val params : t -> Params.t

val epoch : t -> int
(** Monotonic mutation counter, bumped by every {!set_live}/{!set_dead}
    that changes a bit (idempotent no-ops do not bump it). A derived
    structure is valid exactly while the epoch it was built at is
    current. *)

val uid : t -> int
(** Process-unique identity of this status word, distinct across {!copy}.
    Cache keys combine [uid] with the query context so two words never
    share derived state. *)

val live_bits : t -> Lesslog_bits.Packed_bits.t
(** The underlying bitset (bit [i] = PID [i] live). Read-only by
    convention: mutate only through {!set_live}/{!set_dead}, otherwise
    [epoch]/[live_count] go stale. *)

val is_live : t -> Pid.t -> bool
val is_dead : t -> Pid.t -> bool

val set_live : t -> Pid.t -> unit
(** Register a node as live (idempotent). *)

val set_dead : t -> Pid.t -> unit
(** Register a node as dead (idempotent). *)

val live_count : t -> int
val dead_count : t -> int

val live_pids : t -> Pid.t list
(** Ascending PID order. *)

val dead_pids : t -> Pid.t list

val live_array : t -> Pid.t array
(** Ascending PID order; fresh array. *)

val fold_live : t -> init:'a -> f:('a -> Pid.t -> 'a) -> 'a
val iter_live : t -> (Pid.t -> unit) -> unit

val first_live_at_or_below : t -> Pid.t -> Pid.t option
(** Highest live PID [<= p] — a word-level select, O(space/62) worst
    case. *)

val first_live_in_range : t -> lo:Pid.t -> hi:Pid.t -> Pid.t option
(** Lowest live PID in [\[lo, hi\]]. *)

val nth_live : t -> int -> Pid.t option
(** [nth_live t n] is the [n]-th live PID in ascending order (0-based),
    or [None] when [n >= live_count t] — rank/select over words. *)

val nth_dead : t -> int -> Pid.t option

val random_live : t -> Lesslog_prng.Rng.t -> Pid.t option
(** Uniform live PID, [None] when the system is empty. Rejection-samples
    a few slots, then falls back to exact rank/select ({!nth_live}) so
    degenerate densities stay O(space/62) instead of looping. *)

val random_dead : t -> Lesslog_prng.Rng.t -> Pid.t option

val kill_fraction : t -> Lesslog_prng.Rng.t -> fraction:float -> Pid.t list
(** Mark a uniformly chosen [fraction] of the currently live nodes dead and
    return them — the paper's 10/20/30%-dead configurations. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
