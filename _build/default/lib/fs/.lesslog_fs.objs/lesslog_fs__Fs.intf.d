lib/fs/fs.mli: Format Lesslog Lesslog_flow Lesslog_id Lesslog_prng Lesslog_workload Pid
