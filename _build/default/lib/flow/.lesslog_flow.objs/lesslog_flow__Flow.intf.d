lib/flow/flow.mli: Lesslog_id Lesslog_membership Lesslog_ptree Lesslog_workload Pid
