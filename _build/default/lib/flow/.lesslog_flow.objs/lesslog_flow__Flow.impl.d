lib/flow/flow.ml: Array Hashtbl Lesslog_id Lesslog_membership Lesslog_ptree Lesslog_topology Lesslog_workload List Option Params Pid
