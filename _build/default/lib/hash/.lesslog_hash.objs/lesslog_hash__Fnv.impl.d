lib/hash/fnv.ml: Char Int64 Lesslog_bits String
