module Series = Lesslog_report.Series
module Table = Lesslog_report.Table
module Csv = Lesslog_report.Csv
module Ascii_plot = Lesslog_report.Ascii_plot

let s1 = Series.make ~label:"a" [ (1.0, 10.0); (2.0, 20.0) ]
let s2 = Series.make ~label:"b" [ (1.0, 5.0); (3.0, 15.0) ]

(* --- Series ------------------------------------------------------------ *)

let test_series_accessors () =
  Alcotest.(check string) "label" "a" (Series.label s1);
  Alcotest.(check (array (float 1e-9))) "xs" [| 1.0; 2.0 |] (Series.xs s1);
  Alcotest.(check (array (float 1e-9))) "ys" [| 10.0; 20.0 |] (Series.ys s1);
  Alcotest.(check (option (float 1e-9))) "y_at hit" (Some 20.0)
    (Series.y_at s1 ~x:2.0);
  Alcotest.(check (option (float 1e-9))) "y_at miss" None (Series.y_at s1 ~x:9.0)

let test_series_map_y () =
  let doubled = Series.map_y s1 ~f:(fun y -> y *. 2.0) in
  Alcotest.(check (array (float 1e-9))) "mapped" [| 20.0; 40.0 |]
    (Series.ys doubled);
  Alcotest.(check string) "label kept" "a" (Series.label doubled)

(* --- Table --------------------------------------------------------------- *)

let test_table_alignment () =
  let out = Table.render ~header:[ "x"; "longer" ] [ [ "1"; "2" ]; [ "100"; "3" ] ] in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "header + sep + 2 rows" 4 (List.length lines);
  (* The separator mirrors the widths. *)
  (match lines with
  | _ :: sep :: _ ->
      Alcotest.(check bool) "dashes" true (String.contains sep '-')
  | _ -> Alcotest.fail "missing separator")

let test_table_pads_short_rows () =
  let out = Table.render ~header:[ "a"; "b"; "c" ] [ [ "1" ] ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_table_of_series_union () =
  let out = Table.of_series ~x_label:"x" [ s1; s2 ] in
  (* x values 1,2,3; missing cells become "-". *)
  Alcotest.(check bool) "has dash" true (String.contains out '-');
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "rows" 5 (List.length lines)

(* --- Csv ------------------------------------------------------------------ *)

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Csv.escape "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Csv.escape "a\nb")

let test_csv_of_series () =
  let out = Csv.of_series ~x_label:"x" [ s1; s2 ] in
  let lines = String.split_on_char '\n' (String.trim out) in
  Alcotest.(check (list string))
    "document"
    [ "x,a,b"; "1,10,5"; "2,20,"; "3,,15" ]
    lines

let test_csv_write_file () =
  let path = Filename.temp_file "lesslog" ".csv" in
  Csv.write_file ~path "x,y\n1,2\n";
  let ic = open_in path in
  let contents = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "roundtrip" "x,y\n1,2\n" contents

(* --- Ascii plot ------------------------------------------------------------ *)

let contains_sub haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec scan i =
    if i + n > h then false
    else if String.sub haystack i n = needle then true
    else scan (i + 1)
  in
  scan 0

let test_plot_renders_markers_and_legend () =
  let out = Ascii_plot.render ~width:40 ~height:10 [ s1; s2 ] in
  Alcotest.(check bool) "marker a" true (String.contains out '*');
  Alcotest.(check bool) "marker b" true (String.contains out '+');
  Alcotest.(check bool) "legend" true (contains_sub out "legend:")

let test_plot_empty () =
  let out = Ascii_plot.render [] in
  Alcotest.(check bool) "no data note" true (contains_sub out "no data")

let test_plot_single_point () =
  let s = Series.make ~label:"dot" [ (1.0, 1.0) ] in
  let out = Ascii_plot.render [ s ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let prop_plot_never_raises =
  Test_support.qcheck_case ~name:"plot total on arbitrary data"
    QCheck2.Gen.(
      list_size (int_range 0 4)
        (list_size (int_range 0 20)
           (pair (float_bound_inclusive 1000.0) (float_bound_inclusive 1000.0))))
    (fun series_data ->
      let series =
        List.mapi
          (fun i pts -> Series.make ~label:(Printf.sprintf "s%d" i) pts)
          series_data
      in
      ignore (Ascii_plot.render ~width:30 ~height:8 series);
      true)

(* --- Bars -------------------------------------------------------------- *)

let test_bars_scaling () =
  let out =
    Lesslog_report.Bars.render ~width:10 [ ("a", 10.0); ("bb", 5.0); ("c", 0.0) ]
  in
  let lines = String.split_on_char '\n' (String.trim out) in
  Alcotest.(check int) "three bars" 3 (List.length lines);
  (match lines with
  | a :: b :: c :: _ ->
      let count line = String.fold_left (fun n ch -> if ch = '#' then n + 1 else n) 0 line in
      Alcotest.(check int) "full bar" 10 (count a);
      Alcotest.(check int) "half bar" 5 (count b);
      Alcotest.(check int) "empty bar" 0 (count c)
  | _ -> Alcotest.fail "bad shape")

let test_bars_empty () =
  Alcotest.(check bool) "no data" true
    (contains_sub (Lesslog_report.Bars.render []) "no data")

let test_bars_negative_clamped () =
  let out = Lesslog_report.Bars.render ~width:10 [ ("neg", -5.0); ("pos", 5.0) ] in
  Alcotest.(check bool) "renders" true (String.length out > 0)

let test_bars_of_histogram () =
  let h = Lesslog_metrics.Histogram.create () in
  List.iter (Lesslog_metrics.Histogram.add h) [ 0.1; 0.2; 1.5 ];
  let out = Lesslog_report.Bars.of_histogram ~bucket_width:1.0 h in
  Alcotest.(check bool) "bucket labels" true (contains_sub out "[0, 1)")

let () =
  Alcotest.run "report"
    [
      ( "series",
        [
          Alcotest.test_case "accessors" `Quick test_series_accessors;
          Alcotest.test_case "map_y" `Quick test_series_map_y;
        ] );
      ( "table",
        [
          Alcotest.test_case "alignment" `Quick test_table_alignment;
          Alcotest.test_case "pads short rows" `Quick test_table_pads_short_rows;
          Alcotest.test_case "of_series union" `Quick test_table_of_series_union;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escaping" `Quick test_csv_escaping;
          Alcotest.test_case "of_series" `Quick test_csv_of_series;
          Alcotest.test_case "write_file" `Quick test_csv_write_file;
        ] );
      ( "ascii_plot",
        [
          Alcotest.test_case "markers + legend" `Quick
            test_plot_renders_markers_and_legend;
          Alcotest.test_case "empty" `Quick test_plot_empty;
          Alcotest.test_case "single point" `Quick test_plot_single_point;
          prop_plot_never_raises;
        ] );
      ( "bars",
        [
          Alcotest.test_case "scaling" `Quick test_bars_scaling;
          Alcotest.test_case "empty" `Quick test_bars_empty;
          Alcotest.test_case "negative clamped" `Quick test_bars_negative_clamped;
          Alcotest.test_case "of_histogram" `Quick test_bars_of_histogram;
        ] );
    ]
