(* Churn: nodes join, leave and crash while the system keeps every file
   placed where lookups expect it (paper Section 5).

   A 64-node fault-tolerant deployment (b = 1: two copies of every file)
   rides out a sequence of membership events; after each one the
   self-organized mechanism restores the placement invariant, and we
   verify every file remains readable from every live node.

   Run with: dune exec examples/churn_recovery.exe *)

open Lesslog_id
module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Self_org = Lesslog.Self_org
module Status_word = Lesslog_membership.Status_word
module Rng = Lesslog_prng.Rng

let check_all_readable cluster keys =
  let status = Cluster.status cluster in
  List.for_all
    (fun key ->
      List.for_all
        (fun origin -> (Ops.get cluster ~origin ~key).Ops.server <> None)
        (Status_word.live_pids status))
    keys

let () =
  let params = Params.create ~m:6 ~b:1 () in
  let cluster = Cluster.create params in
  let rng = Rng.create ~seed:7 in
  let keys = List.init 20 (fun i -> Printf.sprintf "shard/object-%02d" i) in
  List.iter (fun key -> ignore (Ops.insert cluster ~key)) keys;
  Printf.printf "64-node system, b = 1 (every file stored twice), %d files\n\n"
    (List.length keys);

  let report label =
    let ok = check_all_readable cluster keys in
    let violations = Self_org.integrity_violations cluster in
    Printf.printf "%-34s live=%2d all-readable=%b placement-ok=%b\n" label
      (Cluster.live_count cluster) ok (violations = []);
    assert ok;
    assert (violations = [])
  in
  report "initial state:";

  (* A wave of voluntary departures. *)
  for _ = 1 to 8 do
    match Status_word.random_live (Cluster.status cluster) rng with
    | Some p when Cluster.live_count cluster > 16 ->
        let stats = Self_org.leave cluster p in
        if stats.Self_org.reinserted <> [] then
          Printf.printf "  P(%2d) left; re-homed %d file(s)\n" (Pid.to_int p)
            (List.length stats.Self_org.reinserted)
    | _ -> ()
  done;
  report "after 8 departures:";

  (* Crashes: stores are lost, the sibling subtree recovers them. *)
  for _ = 1 to 6 do
    match Status_word.random_live (Cluster.status cluster) rng with
    | Some p when Cluster.live_count cluster > 16 ->
        let stats = Self_org.fail cluster p in
        Printf.printf "  P(%2d) crashed; recovered=%d lost=%d\n" (Pid.to_int p)
          (List.length stats.Self_org.recovered)
          (List.length stats.Self_org.lost);
        assert (stats.Self_org.lost = [])
    | _ -> ()
  done;
  report "after 6 crashes:";

  (* Rejoins: joiners reclaim the files they should now host. *)
  for _ = 1 to 10 do
    match Status_word.random_dead (Cluster.status cluster) rng with
    | Some p ->
        let stats = Self_org.join cluster p in
        if stats.Self_org.took_over <> [] then
          Printf.printf "  P(%2d) joined; took over %d file(s)\n" (Pid.to_int p)
            (List.length stats.Self_org.took_over)
    | None -> ()
  done;
  report "after 10 joins:";
  print_endline "\nno file was ever lost or misplaced."
