module Status_word = Lesslog_membership.Status_word
module Fnv = Lesslog_hash.Fnv
module Rng = Lesslog_prng.Rng
module Can = Lesslog_can.Can
open Lesslog_id

(* hash63 covers the low 62 bits: divide by 2^62 for a point in [0, 1). *)
let unit_float_of_hash h = float_of_int h /. 4.611686018427387904e18

let point_of_key d key =
  Array.init d (fun j -> unit_float_of_hash (Fnv.hash63 (key ^ "\x00" ^ string_of_int j)))

let make ?(d = 2) params status =
  let space = Params.space params in
  (* One zone per PID slot, from a layout seed fixed by the parameters:
     the same (m, d) always yields the same torus. *)
  let rng = Rng.create ~seed:(0x00ca_a201 lxor (space * 31) lxor d) in
  let zones = Can.create ~rng ~n:space ~d in
  let alive i = Status_word.is_live status (Pid.unsafe_of_int i) in
  let next_hop ~key p =
    match
      Can.next_hop_toward zones ~from:(Pid.to_int p) ~target:(point_of_key d key)
        ~alive
    with
    | None -> None
    | Some j -> Some (Pid.unsafe_of_int j)
  in
  let owner ~key =
    Option.map Pid.unsafe_of_int
      (Can.live_owner_of zones ~target:(point_of_key d key) ~alive)
  in
  let neighbors ~key:_ p =
    Can.neighbors_of zones (Pid.to_int p)
    |> List.filter alive
    |> List.map Pid.unsafe_of_int
  in
  {
    Substrate.name = "can";
    next_hop;
    owner;
    neighbors;
    symmetric_neighbors = true;
    guaranteed_delivery = false;
    membership = Substrate.Generic;
    notify = (fun () -> ());
    replica_target = Substrate.neighbor_replica_target ~neighbors;
  }
