type origin = Inserted | Replicated

let pp_origin fmt = function
  | Inserted -> Format.pp_print_string fmt "inserted"
  | Replicated -> Format.pp_print_string fmt "replicated"

type tier = Replicated_full | Coded of { index : int; k : int; r : int }

let pp_tier fmt = function
  | Replicated_full -> Format.pp_print_string fmt "full"
  | Coded { index; k; r } -> Format.fprintf fmt "coded(%d of %d+%d)" index k r

type entry = {
  key : string;
  origin : origin;
  tier : tier;
  mutable version : int;
  counter : Access_counter.t;
}

type t = {
  entries : (string, entry) Hashtbl.t;
  mutable on_change : (string -> bool -> unit) option;
}

let create () = { entries = Hashtbl.create 16; on_change = None }

let set_observer t f = t.on_change <- Some f

let notify t key held =
  match t.on_change with None -> () | Some f -> f key held

let add ?(tier = Replicated_full) t ~key ~origin ~version ~now =
  (match Hashtbl.find_opt t.entries key with
  | None ->
      Hashtbl.replace t.entries key
        { key; origin; tier; version; counter = Access_counter.create ~now () }
  | Some e ->
      let origin =
        match (e.origin, origin) with
        | Inserted, _ | _, Inserted -> Inserted
        | Replicated, Replicated -> Replicated
      in
      Hashtbl.replace t.entries key
        { e with origin; tier; version = max e.version version });
  notify t key true

let remove t ~key =
  if Hashtbl.mem t.entries key then begin
    Hashtbl.remove t.entries key;
    notify t key false
  end

let holds t ~key = Hashtbl.mem t.entries key
let find t ~key = Hashtbl.find_opt t.entries key
let version t ~key = Option.map (fun e -> e.version) (find t ~key)
let origin t ~key = Option.map (fun e -> e.origin) (find t ~key)
let tier t ~key = Option.map (fun e -> e.tier) (find t ~key)

let record_access t ~key ~now =
  match Hashtbl.find_opt t.entries key with
  | None -> ()
  | Some e -> Access_counter.record e.counter ~now

let set_version t ~key ~version =
  match Hashtbl.find_opt t.entries key with
  | None -> ()
  | Some e -> e.version <- version

let keys t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.entries [] |> List.sort compare

let keys_with_origin t o =
  Hashtbl.fold
    (fun k e acc -> if e.origin = o then k :: acc else acc)
    t.entries []
  |> List.sort compare

let inserted_keys t = keys_with_origin t Inserted
let replicated_keys t = keys_with_origin t Replicated

let coded_keys t =
  Hashtbl.fold
    (fun k e acc -> match e.tier with Coded _ -> k :: acc | _ -> acc)
    t.entries []
  |> List.sort compare

let size t = Hashtbl.length t.entries

let demote_to_replica t ~key =
  match Hashtbl.find_opt t.entries key with
  | None -> ()
  | Some e -> Hashtbl.replace t.entries key { e with origin = Replicated }

let drop_replicas t =
  let dropped = replicated_keys t in
  List.iter (fun key -> remove t ~key) dropped;
  dropped

let evict_cold_replicas ?(survivors = fun _ -> max_int) ?(min_survivors = 0) t
    ~now ~min_rate =
  let cold =
    Hashtbl.fold
      (fun k e acc ->
        if
          e.origin = Replicated && e.tier = Replicated_full
          && Access_counter.rate e.counter ~now < min_rate
        then k :: acc
        else acc)
      t.entries []
    |> List.sort compare
  in
  (* Re-check the survivor floor immediately before each removal: the
     index behind [survivors] updates as this loop (and eviction on
     other nodes this tick) removes copies, and the last-copy bug was
     exactly that every holder checked a stale count. *)
  List.filter
    (fun key ->
      if survivors key > min_survivors then begin
        remove t ~key;
        true
      end
      else false)
    cold

let iter t f = Hashtbl.iter (fun _ e -> f e) t.entries
