lib/prng/zipf.mli: Rng
