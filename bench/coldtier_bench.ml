(* `bench coldtier`: the erasure-coded cold tier against full
   replication, byte-accurate.

   Three gates:

   1. Amplification (always enforced): the adaptive lifecycle (flash
      crowd, long idle stretch, mid-calm double failure, re-heat) run
      twice through the identical dynamic-RF policy and byte ledger —
      demotion armed vs disarmed. The hybrid's time-averaged stored
      bytes must come in at least 30% below the full-replication
      baseline, at equal loss (within 0.05): the (10, 4) code keeps a
      1.4x footprint through the calm where the rf_min = 3 durability
      floor keeps 3x. The hybrid must actually cycle (>= 1 demotion,
      >= 1 promotion, coded serves during the re-heat) and must not
      lose the payload.

   2. Repair traffic (always enforced): the mid-calm failures hit
      fragment holders, so the hybrid's failure-triggered repair bytes
      must be positive and bounded by rebuilding every parity's worth
      of fragments plus the two relocated copies the baseline would
      move — repair is k reads and one write per missing fragment, not
      a full re-replication.

   3. Determinism (always enforced, the CI smoke gate): the sharded
      simulator with the cold tier armed re-run at 1, 2, 4 and 8
      domains must reproduce the digest and the entire cold ledger bit
      for bit — every tier transition runs in sequential barrier
      globals.

   Everything lands in BENCH_coldtier.json ($LESSLOG_BENCH_OUT or the
   working directory); LESSLOG_BENCH_QUICK=1 shrinks m and the
   durations for CI smoke. *)

module E = Lesslog_harness.Experiments
module Des_sim = Lesslog_des.Des_sim
module Pdes_sim = Lesslog_des.Pdes_sim
module Bench_json = Lesslog_report.Bench_json

let out_file name =
  let dir = Option.value (Sys.getenv_opt "LESSLOG_BENCH_OUT") ~default:"." in
  Filename.concat dir name

let failed = ref false

let fail fmt =
  failed := true;
  Printf.eprintf fmt

(* Gates 1 and 2: amplification and repair bytes on the lifecycle. *)
let lifecycle_gates ~quick =
  let m = if quick then 9 else 10 in
  let calm_duration = if quick then 10.0 else 12.0 in
  let code_k = 10 and code_r = 4 and file_bytes = 1 lsl 20 in
  let points =
    E.coldtier_run ~m ~calm_duration ~code_k ~code_r ~file_bytes ()
  in
  print_endline (E.render_coldtier points);
  let full, hybrid =
    match points with
    | [ f; h ] -> (f, h)
    | _ -> failwith "coldtier_run: expected [full; hybrid]"
  in
  let ratio = hybrid.E.ct_mean_bytes /. full.E.ct_mean_bytes in
  Printf.printf
    "amplification: full %.2fx, hybrid %.2fx, ratio %.3f (gate <= 0.70)\n%!"
    full.E.ct_amplification hybrid.E.ct_amplification ratio;
  if ratio > 0.70 then
    fail
      "bench coldtier: FAIL: hybrid stores %.3fx the baseline's bytes — \
       less than 30%% saved\n"
      ratio;
  let loss_gap = Float.abs (hybrid.E.ct_loss -. full.E.ct_loss) in
  if loss_gap > 0.05 then
    fail
      "bench coldtier: FAIL: loss gap %.4f between hybrid (%.4f) and full \
       (%.4f) exceeds 0.05\n"
      loss_gap hybrid.E.ct_loss full.E.ct_loss;
  if hybrid.E.ct_demotions < 1 || hybrid.E.ct_promotions < 1 then
    fail
      "bench coldtier: FAIL: hybrid never cycled (demotions %d, \
       promotions %d)\n"
      hybrid.E.ct_demotions hybrid.E.ct_promotions;
  if hybrid.E.ct_coded_serves < 1 then
    fail "bench coldtier: FAIL: no request was served from fragments\n";
  if hybrid.E.ct_lost then
    fail "bench coldtier: FAIL: the coded payload was lost\n";
  let frag_bytes = (file_bytes + code_k - 1) / code_k in
  let repair_bound =
    (code_r * (code_k + 1) * frag_bytes) + (2 * file_bytes)
  in
  Printf.printf
    "repair: hybrid %d bytes (gate: positive, <= %d)\n%!"
    hybrid.E.ct_repair_bytes repair_bound;
  if hybrid.E.ct_repair_bytes <= 0 then
    fail
      "bench coldtier: FAIL: the mid-calm failures triggered no fragment \
       repair\n";
  if hybrid.E.ct_repair_bytes > repair_bound then
    fail
      "bench coldtier: FAIL: repair moved %d bytes, above the %d-byte \
       rebuild bound\n"
      hybrid.E.ct_repair_bytes repair_bound;
  (full, hybrid, m)

(* Gate 3: the cold ledger survives the domain count. *)
let determinism_gate ~quick =
  let m = if quick then 7 else 8 in
  let duration = if quick then 4.0 else 6.0 in
  let point domains = E.coldtier_pdes ~m ~domains ~duration () in
  let reference = point 1 in
  let rc = Option.get reference.Pdes_sim.cold in
  Printf.printf
    "determinism (cold tier): m=%d, digest at 1 domain = %d, %d demotions\n%!"
    m reference.Pdes_sim.digest rc.Des_sim.demotions;
  if rc.Des_sim.demotions < 1 || rc.Des_sim.coded_serves < 1 then
    fail
      "bench coldtier: FAIL: determinism workload never exercised the \
       tier (demotions %d, coded serves %d)\n"
      rc.Des_sim.demotions rc.Des_sim.coded_serves;
  List.iter
    (fun domains ->
      let p = point domains in
      let pc = Option.get p.Pdes_sim.cold in
      let same =
        p.Pdes_sim.digest = reference.Pdes_sim.digest
        && p.Pdes_sim.served = reference.Pdes_sim.served
        && p.Pdes_sim.events = reference.Pdes_sim.events
        && pc = rc
      in
      Printf.printf "  %d domains: digest %d  coded serves %d  %s\n%!"
        domains p.Pdes_sim.digest pc.Des_sim.coded_serves
        (if same then "OK" else "DIVERGED");
      if not same then
        fail
          "bench coldtier: FAIL: cold-tier results at %d domains diverge \
           from 1 domain (digest %d vs %d)\n"
          domains p.Pdes_sim.digest reference.Pdes_sim.digest)
    [ 2; 4; 8 ];
  reference

let run () =
  let quick = Sys.getenv_opt "LESSLOG_BENCH_QUICK" = Some "1" in
  print_endline "bench coldtier: erasure-coded cold tier vs full replication";
  print_endline "-----------------------------------------------------------";
  let full, hybrid, m = lifecycle_gates ~quick in
  let reference = determinism_gate ~quick in
  let rc = Option.get reference.Pdes_sim.cold in
  Bench_json.write
    ~path:(out_file "BENCH_coldtier.json")
    [
      ("coldtier/m", float_of_int m);
      ("coldtier/full/amplification", full.E.ct_amplification);
      ("coldtier/full/mean_bytes", full.E.ct_mean_bytes);
      ("coldtier/full/loss", full.E.ct_loss);
      ("coldtier/full/bytes_moved", float_of_int full.E.ct_bytes_moved);
      ("coldtier/full/repair_bytes", float_of_int full.E.ct_repair_bytes);
      ("coldtier/hybrid/amplification", hybrid.E.ct_amplification);
      ("coldtier/hybrid/mean_bytes", hybrid.E.ct_mean_bytes);
      ("coldtier/hybrid/loss", hybrid.E.ct_loss);
      ("coldtier/hybrid/bytes_moved", float_of_int hybrid.E.ct_bytes_moved);
      ("coldtier/hybrid/repair_bytes", float_of_int hybrid.E.ct_repair_bytes);
      ("coldtier/hybrid/demotions", float_of_int hybrid.E.ct_demotions);
      ("coldtier/hybrid/promotions", float_of_int hybrid.E.ct_promotions);
      ("coldtier/hybrid/coded_serves", float_of_int hybrid.E.ct_coded_serves);
      ( "coldtier/hybrid/saved_fraction",
        1.0 -. (hybrid.E.ct_mean_bytes /. full.E.ct_mean_bytes) );
      ("coldtier/determinism_digest", float_of_int reference.Pdes_sim.digest);
      ("coldtier/determinism_demotions", float_of_int rc.Des_sim.demotions);
      ( "coldtier/determinism_coded_serves",
        float_of_int rc.Des_sim.coded_serves );
    ];
  Printf.printf "bench coldtier: wrote %s\n%!" (out_file "BENCH_coldtier.json");
  if !failed then exit 1;
  print_endline "bench coldtier: all gates passed"
