module Status_word = Lesslog_membership.Status_word
module Psi = Lesslog_hash.Psi
module Chord = Lesslog_chord.Chord

let make params status psi =
  let ring =
    Substrate.epoch_cached status ~build:(fun () ->
        match Status_word.live_pids status with
        | [] -> None
        | live -> Some (Chord.create params ~live))
  in
  let next_hop ~key p =
    match ring () with
    | None -> None
    | Some r -> Chord.next_hop r ~from:p ~target:(Psi.target psi key)
  in
  let owner ~key =
    Option.map (fun r -> Chord.successor r (Psi.target psi key)) (ring ())
  in
  let neighbors ~key:_ p =
    match ring () with None -> [] | Some r -> Chord.ring_neighbors r p
  in
  {
    Substrate.name = "chord";
    next_hop;
    owner;
    neighbors;
    symmetric_neighbors = true;
    guaranteed_delivery = true;
    membership = Substrate.Generic;
    notify = (fun () -> ());
    replica_target = Substrate.neighbor_replica_target ~neighbors;
  }
