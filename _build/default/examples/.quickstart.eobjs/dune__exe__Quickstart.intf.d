examples/quickstart.mli:
