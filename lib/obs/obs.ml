module Histogram = Lesslog_metrics.Histogram
module Bench_json = Lesslog_report.Bench_json
module Trace = Lesslog_trace.Trace

module Registry = struct
  type counter = { c_name : string; mutable c : int }
  type gauge = { g_name : string; mutable g : float }
  type timer = { t_name : string; mutable hist : Histogram.t }

  type entry = C of counter | G of gauge | T of timer

  type t = { entries : (string, entry) Hashtbl.t }

  let create () = { entries = Hashtbl.create 64 }

  let kind_clash name =
    invalid_arg
      (Printf.sprintf "Obs.Registry: %S already registered as another kind" name)

  let counter t name =
    match Hashtbl.find_opt t.entries name with
    | Some (C c) -> c
    | Some _ -> kind_clash name
    | None ->
        let c = { c_name = name; c = 0 } in
        Hashtbl.add t.entries name (C c);
        c

  let gauge t name =
    match Hashtbl.find_opt t.entries name with
    | Some (G g) -> g
    | Some _ -> kind_clash name
    | None ->
        let g = { g_name = name; g = 0.0 } in
        Hashtbl.add t.entries name (G g);
        g

  let timer t name =
    match Hashtbl.find_opt t.entries name with
    | Some (T tm) -> tm
    | Some _ -> kind_clash name
    | None ->
        let tm = { t_name = name; hist = Histogram.create () } in
        Hashtbl.add t.entries name (T tm);
        tm

  let timer_backed t name hist =
    match Hashtbl.find_opt t.entries name with
    | Some (T tm) ->
        tm.hist <- hist;
        tm
    | Some _ -> kind_clash name
    | None ->
        let tm = { t_name = name; hist } in
        Hashtbl.add t.entries name (T tm);
        tm

  let incr c = c.c <- c.c + 1
  let add c n = c.c <- c.c + n
  let value c = c.c
  let set g v = g.g <- v
  let read g = g.g
  let observe tm v = Histogram.add tm.hist v
  let observe_int tm v = Histogram.add_int tm.hist v

  type snapshot = {
    name : string;
    kind : [ `Counter | `Gauge | `Timer ];
    count : int;
    value : float;
    p50 : float;
    p99 : float;
    max_v : float;
  }

  let snapshot_of = function
    | C c ->
        { name = c.c_name; kind = `Counter; count = c.c;
          value = float_of_int c.c; p50 = nan; p99 = nan; max_v = nan }
    | G g ->
        { name = g.g_name; kind = `Gauge; count = 0; value = g.g; p50 = nan;
          p99 = nan; max_v = nan }
    | T tm ->
        let n = Histogram.count tm.hist in
        let q p = if n = 0 then nan else Histogram.quantile tm.hist p in
        { name = tm.t_name; kind = `Timer; count = n;
          value = Histogram.mean tm.hist; p50 = q 0.5; p99 = q 0.99;
          max_v = (if n = 0 then nan else Histogram.max_value tm.hist) }

  let snapshot t =
    Hashtbl.fold (fun _ e acc -> snapshot_of e :: acc) t.entries []
    |> List.sort (fun a b -> String.compare a.name b.name)

  let reset t =
    Hashtbl.iter
      (fun _ e ->
        match e with
        | C c -> c.c <- 0
        | G g -> g.g <- 0.0
        | T tm -> tm.hist <- Histogram.create ())
      t.entries

  let to_json_pairs t =
    List.concat_map
      (fun s ->
        match s.kind with
        | `Counter | `Gauge -> [ (s.name, s.value) ]
        | `Timer ->
            [
              (s.name ^ "/count", float_of_int s.count);
              (s.name ^ "/mean", s.value);
              (s.name ^ "/p50", s.p50);
              (s.name ^ "/p99", s.p99);
              (s.name ^ "/max", s.max_v);
            ])
      (snapshot t)

  let to_json t = Bench_json.to_string (to_json_pairs t)
end

module Span = struct
  (* Interleaved flat storage with bit-packed side data: a span is a few
     adjacent words in one int array, so the per-span hot-path cost is
     three word writes (one cache line) to open and five to close —
     begin/end/emit allocate nothing. Open spans live at
     [id land (open_cap - 1)] — ids are monotone and spans short-lived,
     so collisions only happen when an old span never ended (it is
     dropped and counted).

     Packed words:
       meta = name | origin << 10 | attempt << 34
       loc  = hops | (server + 1) << 6        (0 = fault)
     which bounds span names at 1024, origins and servers at 2^24 (the
     simulators' own wire-format limit), hops at 63 and attempts at 255;
     out-of-range hops/attempts are clamped, not wrapped. *)
  let name_bits = 10
  let name_limit = 1 lsl name_bits
  let span_origin_bits = 24
  let span_origin_mask = (1 lsl span_origin_bits) - 1
  let attempt_shift = name_bits + span_origin_bits
  let attempt_mask = 0xFF
  let span_hops_bits = 6
  let span_hops_mask = (1 lsl span_hops_bits) - 1

  let clamp v mask = if v < 0 then 0 else if v > mask then mask else v

  let pack_meta ~name ~origin ~attempt =
    name
    lor ((origin land span_origin_mask) lsl name_bits)
    lor (clamp attempt attempt_mask lsl attempt_shift)

  let pack_loc ~server ~hops =
    clamp hops span_hops_mask
    lor ((if server < 0 then 0 else (server land span_origin_mask) + 1)
        lsl span_hops_bits)

  (* Timestamps are held as integer nanoseconds of simulated time: one
     word instead of an unboxed float lets a whole record live in one
     flat buffer, and a 63-bit count of nanoseconds covers ~292 years of
     simulated clock. *)
  let ns_of_s s = int_of_float (s *. 1e9)
  let s_of_ns ns = float_of_int ns *. 1e-9

  (* The two buffers are int bigarrays, not int arrays: bigarray data
     lives outside the OCaml heap, so the megabyte-scale ring is never
     walked by the major GC's mark pass (an int [array] is a scannable
     block — keeping one this large costs every collection), and access
     with a statically-known kind compiles to a bare load/store. *)
  type ibuf = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

  let ibuf n init : ibuf =
    let b = Bigarray.Array1.create Bigarray.Int Bigarray.c_layout n in
    Bigarray.Array1.fill b init;
    b

  type sink = {
    mutable names : string array;
    mutable n_names : int;
    (* open spans: 4 words per slot — id (-1 = free), meta, start_ns,
       pad — interleaved so opening or closing a span touches one cache
       line, not three; slot base = (id land open_mask) * 4 *)
    open_mask : int;
    open_tbl : ibuf;
    (* completed ring: 5 words per span — id, meta, loc, start_ns,
       dur_ns — write position = (total land ring_mask) * 5 *)
    ring_mask : int;
    ring : ibuf;
    mutable total : int;
    mutable dropped : int;
  }

  let pow2_at_least n =
    let rec go p = if p >= n then p else go (p * 2) in
    go 1

  let create_sink ?(open_capacity = 4096) ?(capacity = 16384) () =
    if open_capacity <= 0 || capacity <= 0 then
      invalid_arg "Obs.Span.create_sink: capacities must be positive";
    let oc = pow2_at_least open_capacity and rc = pow2_at_least capacity in
    {
      names = Array.make 8 "";
      n_names = 0;
      open_mask = oc - 1;
      open_tbl = ibuf (oc * 4) (-1);
      ring_mask = rc - 1;
      ring = ibuf (rc * 5) 0;
      total = 0;
      dropped = 0;
    }

  let intern t name =
    let rec find i = if i = t.n_names then -1 else if t.names.(i) = name then i else find (i + 1) in
    match find 0 with
    | i when i >= 0 -> i
    | _ ->
        if t.n_names = name_limit then
          invalid_arg "Obs.Span.intern: too many span names";
        if t.n_names = Array.length t.names then begin
          let grown = Array.make (2 * t.n_names) "" in
          Array.blit t.names 0 grown 0 t.n_names;
          t.names <- grown
        end;
        t.names.(t.n_names) <- name;
        t.n_names <- t.n_names + 1;
        t.n_names - 1

  (* Hot-path slot arithmetic is masked, so every index is in bounds by
     construction; unsafe accesses keep the per-span cost down to bare
     word writes. *)
  let push t ~id ~meta ~loc ~start_ns ~dur_ns =
    let w = (t.total land t.ring_mask) * 5 in
    Bigarray.Array1.unsafe_set t.ring w id;
    Bigarray.Array1.unsafe_set t.ring (w + 1) meta;
    Bigarray.Array1.unsafe_set t.ring (w + 2) loc;
    Bigarray.Array1.unsafe_set t.ring (w + 3) start_ns;
    Bigarray.Array1.unsafe_set t.ring (w + 4) dur_ns;
    t.total <- t.total + 1

  let begin_span t ~name ~id ~origin ~at =
    let s = (id land t.open_mask) * 4 in
    if Bigarray.Array1.unsafe_get t.open_tbl s >= 0 then
      t.dropped <- t.dropped + 1;
    Bigarray.Array1.unsafe_set t.open_tbl s id;
    Bigarray.Array1.unsafe_set t.open_tbl (s + 1)
      (name lor ((origin land span_origin_mask) lsl name_bits));
    Bigarray.Array1.unsafe_set t.open_tbl (s + 2) (ns_of_s at)

  let set_attempt t ~id ~attempt =
    let s = (id land t.open_mask) * 4 in
    if Bigarray.Array1.unsafe_get t.open_tbl s = id then begin
      let m = Bigarray.Array1.unsafe_get t.open_tbl (s + 1) in
      Bigarray.Array1.unsafe_set t.open_tbl (s + 1)
        (m land lnot (attempt_mask lsl attempt_shift)
        lor (clamp attempt attempt_mask lsl attempt_shift))
    end

  let end_span_int t ~id ~at ~server ~hops =
    let s = (id land t.open_mask) * 4 in
    if Bigarray.Array1.unsafe_get t.open_tbl s = id then begin
      Bigarray.Array1.unsafe_set t.open_tbl s (-1);
      let start_ns = Bigarray.Array1.unsafe_get t.open_tbl (s + 2) in
      push t ~id
        ~meta:(Bigarray.Array1.unsafe_get t.open_tbl (s + 1))
        ~loc:(pack_loc ~server ~hops)
        ~start_ns ~dur_ns:(ns_of_s at - start_ns)
    end

  let end_span t ~id ~at ~server ~hops =
    end_span_int t ~id ~at
      ~server:(match server with Some p -> p | None -> -1)
      ~hops

  let emit_int t ~name ~id ~origin ~at ~dur ~server ~hops ~attempt =
    push t ~id
      ~meta:(pack_meta ~name ~origin ~attempt)
      ~loc:(pack_loc ~server ~hops)
      ~start_ns:(ns_of_s at) ~dur_ns:(ns_of_s dur)

  let emit t ~name ~id ~origin ~at ~dur ~server ~hops ~attempt =
    emit_int t ~name ~id ~origin ~at ~dur
      ~server:(match server with Some p -> p | None -> -1)
      ~hops ~attempt

  let completed t = t.total
  let retained t = min t.total (t.ring_mask + 1)
  let dropped t = t.dropped

  let open_spans t =
    let n = ref 0 in
    for s = 0 to t.open_mask do
      if t.open_tbl.{s * 4} >= 0 then incr n
    done;
    !n

  let iter t f =
    let first = max 0 (t.total - (t.ring_mask + 1)) in
    for k = first to t.total - 1 do
      let i = (k land t.ring_mask) * 5 in
      let meta = t.ring.{i + 1} and loc = t.ring.{i + 2} in
      let sv = loc lsr span_hops_bits in
      f
        (Trace.Event.Span
           {
             at = s_of_ns t.ring.{i + 3};
             dur = s_of_ns t.ring.{i + 4};
             name = t.names.(meta land (name_limit - 1));
             id = t.ring.{i};
             origin = (meta lsr name_bits) land span_origin_mask;
             server = (if sv = 0 then None else Some (sv - 1));
             hops = loc land span_hops_mask;
             attempt = meta lsr attempt_shift;
           })
    done

  let to_events t =
    let acc = ref [] in
    iter t (fun e -> acc := e :: !acc);
    List.rev !acc

  (* Append [src]'s retained spans (oldest first) onto [into]'s ring,
     re-interning names — the export-time merge for per-shard/per-domain
     sinks. Raw ring words are copied with only the name field of [meta]
     rewritten, so packed origin/attempt/loc survive bit for bit; the
     ring bound applies as if the spans had been recorded on [into]
     directly. Merging shard sinks in a fixed (shard-id) order keeps the
     combined ring deterministic at any domain count. *)
  let merge_into ~into src =
    let first = max 0 (src.total - (src.ring_mask + 1)) in
    for k = first to src.total - 1 do
      let i = (k land src.ring_mask) * 5 in
      let meta = src.ring.{i + 1} in
      let name = intern into src.names.(meta land (name_limit - 1)) in
      push into ~id:src.ring.{i}
        ~meta:(meta land lnot (name_limit - 1) lor name)
        ~loc:src.ring.{i + 2} ~start_ns:src.ring.{i + 3}
        ~dur_ns:src.ring.{i + 4}
    done;
    into.dropped <- into.dropped + src.dropped

  (* Non-finite numbers have no JSON literal; a span can only carry one
     through a corrupted clock, and 0 keeps the file loadable. *)
  let json_num x = if Float.is_finite x then Printf.sprintf "%.3f" x else "0"

  let to_chrome_json t =
    let buf = Buffer.create (4096 + (retained t * 96)) in
    Buffer.add_string buf "{\"traceEvents\":[";
    let first_row = ref true in
    let first = max 0 (t.total - (t.ring_mask + 1)) in
    for k = first to t.total - 1 do
      let i = (k land t.ring_mask) * 5 in
      let meta = t.ring.{i + 1} and loc = t.ring.{i + 2} in
      let sv = loc lsr span_hops_bits in
      if !first_row then first_row := false else Buffer.add_char buf ',';
      Buffer.add_string buf "\n{\"name\":\"";
      Buffer.add_string buf (Bench_json.escape t.names.(meta land (name_limit - 1)));
      Buffer.add_string buf "\",\"cat\":\"lesslog\",\"ph\":\"X\",\"ts\":";
      (* trace_event timestamps are microseconds; the simulated clock is
         nanoseconds internally *)
      Buffer.add_string buf (json_num (float_of_int t.ring.{i + 3} /. 1e3));
      Buffer.add_string buf ",\"dur\":";
      Buffer.add_string buf (json_num (float_of_int t.ring.{i + 4} /. 1e3));
      Buffer.add_string buf ",\"pid\":0,\"tid\":";
      Buffer.add_string buf
        (string_of_int ((meta lsr name_bits) land span_origin_mask));
      Buffer.add_string buf ",\"args\":{\"id\":";
      Buffer.add_string buf (string_of_int t.ring.{i});
      Buffer.add_string buf ",\"server\":";
      Buffer.add_string buf
        (if sv = 0 then "null" else string_of_int (sv - 1));
      Buffer.add_string buf ",\"hops\":";
      Buffer.add_string buf (string_of_int (loc land span_hops_mask));
      Buffer.add_string buf ",\"attempt\":";
      Buffer.add_string buf (string_of_int (meta lsr attempt_shift));
      Buffer.add_string buf "}}"
    done;
    Buffer.add_string buf "\n],\"displayTimeUnit\":\"ms\"}\n";
    Buffer.contents buf

  let write_chrome ~path t =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_chrome_json t))
end

type t = { registry : Registry.t; spans : Span.sink }

let create ?open_capacity ?span_capacity () =
  {
    registry = Registry.create ();
    spans = Span.create_sink ?open_capacity ?capacity:span_capacity ();
  }
