lib/bits/bitops.ml: Format String
