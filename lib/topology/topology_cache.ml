open Lesslog_id
module Status_word = Lesslog_membership.Status_word
module Packed_bits = Lesslog_bits.Packed_bits

type entry = {
  status : Status_word.t;
  comp : int;
  mutable epoch : int;
  vids : Packed_bits.t;
  mutable max_live_vid : int;
  mutable next_pids : int array;
  children : (int, Pid.t list) Hashtbl.t;
}

type state = { mutable last : entry option; table : (int, entry) Hashtbl.t }

(* Domain-local: Lesslog_parallel.Par spawns real domains, and a shared
   table would race. Entries are pure derived state, so building them
   independently per domain is merely a little redundant work. *)
let dls =
  Domain.DLS.new_key (fun () -> { last = None; table = Hashtbl.create 16 })

(* comp < 2^max_width = 2^24, so (uid, comp) packs into one int key. *)
let key_of ~uid ~comp = (uid lsl Lesslog_bits.Bitops.max_width) lor comp

(* Keep runaway experiments (thousands of short-lived status words) from
   pinning dead entries; a reset only costs rebuilds. *)
let max_entries = 512

let rebuild e =
  Packed_bits.clear_all e.vids;
  let comp = e.comp in
  let vids = e.vids in
  Packed_bits.iter_set (Status_word.live_bits e.status) (fun p ->
      Packed_bits.set vids (p lxor comp));
  e.max_live_vid <-
    Packed_bits.first_set_at_or_below vids (Packed_bits.length vids - 1);
  e.next_pids <- [||];
  Hashtbl.reset e.children;
  e.epoch <- Status_word.epoch e.status

let make status ~comp =
  let space = Params.space (Status_word.params status) in
  let e =
    {
      status;
      comp;
      epoch = -1;
      vids = Packed_bits.create space;
      max_live_vid = -1;
      next_pids = [||];
      children = Hashtbl.create 16;
    }
  in
  rebuild e;
  e

let validate e =
  if e.epoch <> Status_word.epoch e.status then rebuild e;
  e

let next_pids e =
  if Array.length e.next_pids <> 0 then e.next_pids
  else begin
    let space = Packed_bits.length e.vids in
    let mask = space - 1 in
    let comp = e.comp in
    let vids = e.vids in
    let root_live = Packed_bits.get vids mask in
    let g = e.max_live_vid in
    (* First alive ancestor per VID, by descending-VID dynamic
       programming: parents have larger VIDs, so faa.(parent) is final
       when v is processed — O(space) total instead of O(space * m). *)
    let faa = Array.make space (-1) in
    for v = space - 2 downto 0 do
      let pv =
        v lor (1 lsl Lesslog_bits.Bitops.floor_log2 (lnot v land mask))
      in
      faa.(v) <- (if Packed_bits.get vids pv then pv else faa.(pv))
    done;
    let next = Array.make space (-1) in
    for v = 0 to space - 1 do
      let a = faa.(v) in
      next.(v lxor comp) <-
        (if a >= 0 then a lxor comp
         else if root_live then -1
         else if g >= 0 && g <> v then g lxor comp
         else -1)
    done;
    e.next_pids <- next;
    next
  end

let get status ~comp =
  let s = Domain.DLS.get dls in
  match s.last with
  | Some e when e.status == status && e.comp = comp -> validate e
  | _ ->
      let k = key_of ~uid:(Status_word.uid status) ~comp in
      let e =
        match Hashtbl.find_opt s.table k with
        | Some e -> validate e
        | None ->
            if Hashtbl.length s.table >= max_entries then
              Hashtbl.reset s.table;
            let e = make status ~comp in
            Hashtbl.add s.table k e;
            e
      in
      s.last <- Some e;
      e
