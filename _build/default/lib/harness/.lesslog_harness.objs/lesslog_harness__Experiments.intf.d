lib/harness/experiments.mli: Lesslog_flow Lesslog_prng Lesslog_report
