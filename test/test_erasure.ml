module Gf256 = Lesslog_erasure.Gf256
module Erasure = Lesslog_erasure.Erasure

(* --- GF(256) field axioms --------------------------------------------- *)

let gen_byte = QCheck2.Gen.int_range 0 255
let gen_nonzero = QCheck2.Gen.int_range 1 255

let prop_mul_commutes =
  Test_support.qcheck_case ~name:"mul commutes"
    QCheck2.Gen.(pair gen_byte gen_byte)
    (fun (a, b) -> Gf256.mul a b = Gf256.mul b a)

let prop_mul_associates =
  Test_support.qcheck_case ~name:"mul associates"
    QCheck2.Gen.(triple gen_byte gen_byte gen_byte)
    (fun (a, b, c) -> Gf256.mul (Gf256.mul a b) c = Gf256.mul a (Gf256.mul b c))

let prop_mul_distributes =
  Test_support.qcheck_case ~name:"mul distributes over add"
    QCheck2.Gen.(triple gen_byte gen_byte gen_byte)
    (fun (a, b, c) ->
      Gf256.mul a (Gf256.add b c) = Gf256.add (Gf256.mul a b) (Gf256.mul a c))

let prop_add_is_involution =
  Test_support.qcheck_case ~name:"add is xor: a + a = 0"
    QCheck2.Gen.(pair gen_byte gen_byte)
    (fun (a, b) -> Gf256.add a a = 0 && Gf256.add a b = a lxor b)

let prop_inverse =
  Test_support.qcheck_case ~name:"a * inv a = 1" gen_nonzero (fun a ->
      Gf256.mul a (Gf256.inv a) = 1 && Gf256.div a a = 1)

let prop_div_undoes_mul =
  Test_support.qcheck_case ~name:"div undoes mul"
    QCheck2.Gen.(pair gen_byte gen_nonzero)
    (fun (a, b) -> Gf256.div (Gf256.mul a b) b = a)

let prop_pow_is_iterated_mul =
  Test_support.qcheck_case ~name:"pow is iterated mul"
    QCheck2.Gen.(pair gen_byte (int_range 0 10))
    (fun (a, n) ->
      let rec loop acc i = if i = 0 then acc else loop (Gf256.mul acc a) (i - 1) in
      Gf256.pow a n = loop 1 n)

let test_identities () =
  Alcotest.(check int) "mul by 0" 0 (Gf256.mul 0 123);
  Alcotest.(check int) "mul by 1" 123 (Gf256.mul 1 123);
  Alcotest.(check int) "pow 0 0" 1 (Gf256.pow 0 0);
  Alcotest.check_raises "div by 0" Division_by_zero (fun () ->
      ignore (Gf256.div 1 0));
  Alcotest.check_raises "inv 0" Division_by_zero (fun () ->
      ignore (Gf256.inv 0));
  (* The exp/log tables invert each other on the nonzero elements. *)
  for i = 1 to 255 do
    Alcotest.(check int)
      (Printf.sprintf "exp (log %d)" i)
      i
      Gf256.exp_table.(Gf256.log_table.(i))
  done

(* --- Round trips ------------------------------------------------------ *)

(* The ISSUE's three codes, exercised below both deterministically and
   under random payloads/drop patterns. *)
let codes = [ (4, 2); (10, 4); (6, 3) ]

let payload_of_size n =
  String.init n (fun i -> Char.chr ((i * 131 + (i / 7)) land 0xff))

(* Decode from the survivor set [all fragments minus drop], where
   [drop] lists fragment indices. *)
let decode_without t ~payload ~drop =
  let fragments = Erasure.encode t payload in
  let survivors =
    Array.to_list fragments
    |> List.mapi (fun i f -> (i, f))
    |> List.filter (fun (i, _) -> not (List.mem i drop))
  in
  Erasure.decode t ~len:(String.length payload) survivors

(* Every way of dropping exactly [r] fragments out of [k + r]. *)
let rec choose n lst =
  if n = 0 then [ [] ]
  else
    match lst with
    | [] -> []
    | x :: rest ->
        List.map (fun c -> x :: c) (choose (n - 1) rest) @ choose n rest

let test_all_r_drops () =
  List.iter
    (fun (k, r) ->
      let t = Erasure.create ~k ~r in
      (* Sizes: empty, one byte, a non-multiple of k, an exact
         multiple, and something big enough to span several words. *)
      List.iter
        (fun len ->
          let payload = payload_of_size len in
          List.iter
            (fun drop ->
              match decode_without t ~payload ~drop with
              | Ok rebuilt ->
                  if rebuilt <> payload then
                    Alcotest.failf "(%d,%d) len %d drop [%s]: corrupt" k r len
                      (String.concat ";" (List.map string_of_int drop))
              | Error e ->
                  Alcotest.failf "(%d,%d) len %d drop [%s]: %s" k r len
                    (String.concat ";" (List.map string_of_int drop))
                    e)
            (choose r (List.init (k + r) Fun.id)))
        [ 0; 1; k + 1; 3 * k; (3 * k) + 1 ])
    codes

let gen_payload = QCheck2.Gen.(string_size (int_range 0 200))

let gen_code = QCheck2.Gen.oneofl codes

(* A random drop set of size <= r, as distinct indices in 0 .. k+r-1. *)
let gen_roundtrip =
  QCheck2.Gen.(
    gen_code >>= fun (k, r) ->
    gen_payload >>= fun payload ->
    shuffle_l (List.init (k + r) Fun.id) >>= fun order ->
    int_range 0 r >>= fun drops ->
    return ((k, r), payload, List.filteri (fun i _ -> i < drops) order))

let prop_roundtrip =
  Test_support.qcheck_case ~count:200 ~name:"encode/drop <= r/decode"
    gen_roundtrip
    (fun ((k, r), payload, drop) ->
      let t = Erasure.create ~k ~r in
      decode_without t ~payload ~drop = Ok payload)

let prop_too_few_survivors =
  Test_support.qcheck_case ~count:100 ~name:"r+1 losses are unrecoverable"
    QCheck2.Gen.(
      gen_code >>= fun (k, r) ->
      gen_payload >>= fun payload ->
      shuffle_l (List.init (k + r) Fun.id) >>= fun order ->
      return ((k, r), payload, List.filteri (fun i _ -> i <= r) order))
    (fun ((k, r), payload, drop) ->
      let t = Erasure.create ~k ~r in
      Result.is_error (decode_without t ~payload ~drop))

let test_decode_details () =
  let t = Erasure.create ~k:4 ~r:2 in
  let payload = payload_of_size 10 in
  let frags = Erasure.encode t payload in
  Alcotest.(check int) "fragment count" 6 (Array.length frags);
  Alcotest.(check int) "fragment size" 3
    (Erasure.fragment_size t ~len:(String.length payload));
  (* Systematic: data stripes are the (padded) payload itself. *)
  Alcotest.(check string) "stripe 0" (String.sub payload 0 3) frags.(0);
  (* Duplicates are ignored; extras beyond k are ignored. *)
  let ok =
    Erasure.decode t ~len:10
      [ (5, frags.(5)); (5, frags.(5)); (1, frags.(1)); (0, frags.(0));
        (2, frags.(2)); (4, frags.(4)) ]
  in
  Alcotest.(check (result string string)) "dups + extras" (Ok payload) ok;
  (* Malformed survivor lists are reported, not raised. *)
  Alcotest.(check bool) "bad index" true
    (Result.is_error (Erasure.decode t ~len:10 [ (9, frags.(0)) ]));
  Alcotest.(check bool) "bad size" true
    (Result.is_error
       (Erasure.decode t ~len:10
          [ (0, "x"); (1, frags.(1)); (2, frags.(2)); (3, frags.(3)) ]))

let test_create_validation () =
  let bad k r =
    Alcotest.(check bool)
      (Printf.sprintf "create k=%d r=%d rejected" k r)
      true
      (try
         ignore (Erasure.create ~k ~r);
         false
       with Invalid_argument _ -> true)
  in
  bad 0 2;
  bad (-1) 2;
  bad 4 (-1);
  bad 200 100;
  (* r = 0 is a legal degenerate code: striping with no parity. *)
  let t = Erasure.create ~k:3 ~r:0 in
  let payload = payload_of_size 7 in
  let frags = Erasure.encode t payload in
  Alcotest.(check (result string string)) "r=0 roundtrip" (Ok payload)
    (Erasure.decode t ~len:7 (Array.to_list frags |> List.mapi (fun i f -> (i, f))))

let test_parity_rows () =
  (* Parity rows have full length k and are not unit vectors (the code
     is systematic, so units live in the implicit top rows). *)
  List.iter
    (fun (k, r) ->
      let t = Erasure.create ~k ~r in
      for j = 0 to r - 1 do
        let row = Erasure.parity_row t j in
        Alcotest.(check int) "row length" k (Array.length row);
        let nonzero = Array.fold_left (fun n x -> if x <> 0 then n + 1 else n) 0 row in
        Alcotest.(check bool) "row mixes stripes" true (nonzero > 1)
      done)
    codes

let () =
  Alcotest.run "erasure"
    [
      ( "gf256",
        [
          Alcotest.test_case "identities" `Quick test_identities;
          prop_mul_commutes;
          prop_mul_associates;
          prop_mul_distributes;
          prop_add_is_involution;
          prop_inverse;
          prop_div_undoes_mul;
          prop_pow_is_iterated_mul;
        ] );
      ( "codes",
        [
          Alcotest.test_case "all r-drops recover, all sizes" `Quick
            test_all_r_drops;
          Alcotest.test_case "decode details" `Quick test_decode_details;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "parity rows" `Quick test_parity_rows;
          prop_roundtrip;
          prop_too_few_survivors;
        ] );
    ]
