open Lesslog_id
module Series = Lesslog_report.Series
module Cluster = Lesslog.Cluster
module Ops = Lesslog.Ops
module Status_word = Lesslog_membership.Status_word
module Demand = Lesslog_workload.Demand
module Balance = Lesslog_flow.Balance
module Policy = Lesslog_flow.Policy
module Rng = Lesslog_prng.Rng
module Par = Lesslog_parallel.Par

type config = {
  m : int;
  capacity : float;
  rates : float list;
  trials : int;
  seed : int;
  hot_fraction : float;
  hot_share : float;
  domains : int;
}

let sweep ~from ~until ~step =
  let rec go acc x = if x > until then List.rev acc else go (x :: acc) (x +. step) in
  go [] from

let default =
  {
    m = 10;
    capacity = 100.0;
    rates = sweep ~from:1000.0 ~until:20000.0 ~step:1000.0;
    trials = 3;
    seed = 42;
    hot_fraction = 0.2;
    hot_share = 0.8;
    domains = 1;
  }

let quick =
  {
    default with
    m = 7;
    rates = sweep ~from:500.0 ~until:2500.0 ~step:500.0;
    trials = 1;
  }

type demand_model = Even | Locality

let hot_file = "hot/popular-object"

(* Every experiment point gets an independent deterministic RNG, so sweeps
   give identical results sequentially and in parallel. *)
let point_rng config ~label ~rate ~trial =
  let tag = Printf.sprintf "%d|%s|%g|%d" config.seed label rate trial in
  Rng.create ~seed:(Lesslog_hash.Fnv.hash63 tag land 0x3FFFFFFF)

let one_trial config ~rng ~dead_fraction ~demand_model ~policy ~rate =
  let params = Params.create ~m:config.m () in
  let cluster =
    if dead_fraction > 0.0 then
      Cluster.create_with_dead_fraction params ~rng ~fraction:dead_fraction
    else Cluster.create params
  in
  (match Ops.insert cluster ~key:hot_file with
  | [] -> invalid_arg "Experiments.one_trial: empty system"
  | _ -> ());
  let status = Cluster.status cluster in
  let demand =
    match demand_model with
    | Even -> Demand.uniform status ~total:rate
    | Locality ->
        Demand.locality ~hot_fraction:config.hot_fraction
          ~hot_share:config.hot_share status ~rng ~total:rate
  in
  let outcome =
    Balance.run ~rng ~cluster ~key:hot_file ~demand ~capacity:config.capacity
      ~policy ()
  in
  float_of_int outcome.Balance.replicas

let replicas_to_balance config ~rng ~dead_fraction ~demand_model ~policy ~rate =
  let total = ref 0.0 in
  for _ = 1 to config.trials do
    let trial_rng = Rng.split rng in
    total :=
      !total
      +. one_trial config ~rng:trial_rng ~dead_fraction ~demand_model ~policy
           ~rate
  done;
  !total /. float_of_int config.trials

let averaged_point config ~label ~dead_fraction ~demand_model ~policy ~rate =
  let total = ref 0.0 in
  for trial = 1 to config.trials do
    let rng = point_rng config ~label ~rate ~trial in
    total :=
      !total
      +. one_trial config ~rng ~dead_fraction ~demand_model ~policy ~rate
  done;
  (rate, !total /. float_of_int config.trials)

let series_for config ~label ~dead_fraction ~demand_model ~policy =
  let points =
    Par.map_list ~domains:config.domains
      ~f:(fun rate ->
        averaged_point config ~label ~dead_fraction ~demand_model ~policy ~rate)
      config.rates
  in
  Series.make ~label points

let policy_series config ~demand_model =
  List.map
    (fun policy ->
      series_for config ~label:(Policy.name policy) ~dead_fraction:0.0
        ~demand_model ~policy)
    Policy.all

let dead_series config ~demand_model =
  List.map
    (fun dead_fraction ->
      let label =
        Printf.sprintf "%d%% dead" (int_of_float (dead_fraction *. 100.))
      in
      series_for config ~label ~dead_fraction ~demand_model
        ~policy:Policy.Lesslog)
    [ 0.1; 0.2; 0.3 ]

let fig5 ?(config = default) () = policy_series config ~demand_model:Even
let fig6 ?(config = default) () = dead_series config ~demand_model:Even
let fig7 ?(config = default) () = policy_series config ~demand_model:Locality
let fig8 ?(config = default) () = dead_series config ~demand_model:Locality

(* --- DES m-sweep --------------------------------------------------------- *)

module Des_sim = Lesslog_des.Des_sim
module Histogram = Lesslog_metrics.Histogram

type des_point = {
  des_m : int;
  nodes : int;
  events : int;
  secs : float;
  events_per_sec : float;
  served : int;
  faults : int;
  replicas : int;
  messages : int;
  p50_latency : float;
  p99_latency : float;
  mean_hops : float;
}

let des_point ~m ~rate_per_node ~duration ~capacity ~seed =
  let params = Params.create ~m () in
  let cluster = Cluster.create params in
  (match Ops.insert cluster ~key:hot_file with
  | [] -> invalid_arg "Experiments.des_point: empty system"
  | _ -> ());
  let status = Cluster.status cluster in
  let nodes = Status_word.live_count status in
  let total = rate_per_node *. float_of_int nodes in
  let demand = Demand.uniform status ~total in
  let tag = Printf.sprintf "%d|des|%d" seed m in
  let rng = Rng.create ~seed:(Lesslog_hash.Fnv.hash63 tag land 0x3FFFFFFF) in
  let config = { Des_sim.default_config with capacity } in
  let t0 = Sys.time () in
  let r = Des_sim.run ~config ~rng ~cluster ~key:hot_file ~demand ~duration () in
  let secs = Sys.time () -. t0 in
  let q h p = if Histogram.count h = 0 then 0.0 else Histogram.quantile h p in
  {
    des_m = m;
    nodes;
    events = r.Des_sim.events;
    secs;
    events_per_sec =
      (if secs > 0.0 then float_of_int r.Des_sim.events /. secs else 0.0);
    served = r.Des_sim.served;
    faults = r.Des_sim.faults;
    replicas = r.Des_sim.replicas_created;
    messages = r.Des_sim.messages;
    p50_latency = q r.Des_sim.latencies 0.5;
    p99_latency = q r.Des_sim.latencies 0.99;
    mean_hops = Histogram.mean r.Des_sim.hops;
  }

let des_sweep ?(ms = [ 10; 11; 12; 13; 14; 15; 16 ]) ?(rate_per_node = 2.0)
    ?(duration = 5.0) ?(capacity = 100.0) ?(seed = 42) () =
  List.map
    (fun m -> des_point ~m ~rate_per_node ~duration ~capacity ~seed)
    ms

let render_des_sweep points =
  let header =
    [ "m"; "nodes"; "events"; "ev/s"; "served"; "faults"; "replicas";
      "p50 lat"; "p99 lat"; "hops" ]
  in
  let rows =
    List.map
      (fun p ->
        [
          string_of_int p.des_m;
          string_of_int p.nodes;
          string_of_int p.events;
          Printf.sprintf "%.3g" p.events_per_sec;
          string_of_int p.served;
          string_of_int p.faults;
          string_of_int p.replicas;
          Printf.sprintf "%.4f" p.p50_latency;
          Printf.sprintf "%.4f" p.p99_latency;
          Printf.sprintf "%.2f" p.mean_hops;
        ])
      points
  in
  Lesslog_report.Table.render ~header rows

let render ~title ~x_label ~y_label series =
  String.concat "\n"
    [
      title;
      String.make (String.length title) '=';
      Lesslog_report.Table.of_series ~x_label series;
      "";
      Lesslog_report.Ascii_plot.render ~x_label ~y_label series;
    ]

(* --- S2: domain-parallel sharded DES (Pdes_sim) ------------------------ *)

module Pdes_sim = Lesslog_des.Pdes_sim

type pdes_point = {
  pdes_m : int;
  pdes_b : int;
  pdes_domains : int;
  pdes_nodes : int;
  pdes_events : int;
  pdes_secs : float;
  pdes_events_per_sec : float;
  pdes_served : int;
  pdes_faults : int;
  pdes_migrations : int;
  pdes_replicas_end : int;
  pdes_oracle_replicas : float;
  pdes_messages : int;
  pdes_cross_sends : int;
  pdes_epochs : int;
  pdes_phases : int;
  pdes_digest : int;
  pdes_p50_latency : float;
  pdes_p99_latency : float;
}

let pdes_oracle_replicas ~total_rate ~capacity =
  if capacity <= 0.0 then
    invalid_arg "Experiments.pdes_oracle_replicas: capacity must be positive";
  Float.max 1.0 (total_rate /. capacity)

let pdes_point ?(b = 2) ?(domains = 1) ?(fuse = true) ?faults ~m ~rate_per_node
    ~duration ~capacity ~seed () =
  let params = Params.create ~b ~m () in
  let status = Status_word.create params ~initially_live:true in
  let nodes = Status_word.live_count status in
  let total = rate_per_node *. float_of_int nodes in
  let demand = Demand.uniform status ~total in
  let tag = Printf.sprintf "%d|pdes|%d" seed m in
  let run_seed = Lesslog_hash.Fnv.hash63 tag land 0x3FFFFFFF in
  let config = { Pdes_sim.default_config with capacity } in
  let t0 = Sys.time () in
  let r =
    Pdes_sim.run ~config ?faults ~domains ~fuse ~seed:run_seed ~params
      ~key:hot_file ~demand ~duration ()
  in
  let secs = Sys.time () -. t0 in
  let q h p = if Histogram.count h = 0 then 0.0 else Histogram.quantile h p in
  {
    pdes_m = m;
    pdes_b = b;
    pdes_domains = domains;
    pdes_nodes = nodes;
    pdes_events = r.Pdes_sim.events;
    pdes_secs = secs;
    pdes_events_per_sec =
      (if secs > 0.0 then float_of_int r.Pdes_sim.events /. secs else 0.0);
    pdes_served = r.Pdes_sim.served;
    pdes_faults = r.Pdes_sim.faults;
    pdes_migrations = r.Pdes_sim.migrations;
    pdes_replicas_end = r.Pdes_sim.replicas_end;
    pdes_oracle_replicas = pdes_oracle_replicas ~total_rate:total ~capacity;
    pdes_messages = r.Pdes_sim.messages;
    pdes_cross_sends = r.Pdes_sim.cross_sends;
    pdes_epochs = r.Pdes_sim.epochs;
    pdes_phases = r.Pdes_sim.phases;
    pdes_digest = r.Pdes_sim.digest;
    pdes_p50_latency = q r.Pdes_sim.latencies 0.5;
    pdes_p99_latency = q r.Pdes_sim.latencies 0.99;
  }

(* Churn-heavy row: a generated fault plan (crashes with restarts plus a
   loss burst, no partitions) replayed through the sharded simulator's
   barrier globals. The plan is derived from its own seed tag, so the
   same row is reproducible at any domain count. *)
let pdes_fault_point ?(b = 2) ?(domains = 1) ?(fuse = true) ~m ~rate_per_node
    ~duration ~capacity ~seed () =
  let params = Params.create ~b ~m () in
  let status = Status_word.create params ~initially_live:true in
  let tag = Printf.sprintf "%d|pdesfault|%d" seed m in
  let rng = Rng.create ~seed:(Lesslog_hash.Fnv.hash63 tag land 0x3FFFFFFF) in
  let live = Status_word.live_pids status in
  let crash_fraction =
    Float.min 0.25 (8.0 /. float_of_int (List.length live))
  in
  let faults =
    Lesslog_workload.Faults.generate ~rng ~live ~duration ~crash_fraction
      ~restart_fraction:0.5 ~bursts:2 ~burst_loss:0.3 ~partitions:0 ()
  in
  pdes_point ~b ~domains ~fuse ~faults ~m ~rate_per_node ~duration ~capacity
    ~seed ()

let pdes_sweep ?(ms = [ 10; 11; 12; 13; 14; 15; 16 ]) ?(b = 2) ?(domains = 1)
    ?(rate_per_node = 2.0) ?(duration = 5.0) ?(capacity = 100.0) ?(seed = 42)
    () =
  List.map
    (fun m -> pdes_point ~b ~domains ~m ~rate_per_node ~duration ~capacity ~seed ())
    ms

let render_pdes_sweep points =
  let header =
    [ "m"; "shards"; "nodes"; "events"; "ev/s"; "served"; "faults"; "migr";
      "repl"; "oracle"; "x-send"; "epochs"; "p99 lat" ]
  in
  let rows =
    List.map
      (fun p ->
        [
          string_of_int p.pdes_m;
          string_of_int (1 lsl p.pdes_b);
          string_of_int p.pdes_nodes;
          string_of_int p.pdes_events;
          Printf.sprintf "%.3g" p.pdes_events_per_sec;
          string_of_int p.pdes_served;
          string_of_int p.pdes_faults;
          string_of_int p.pdes_migrations;
          string_of_int p.pdes_replicas_end;
          Printf.sprintf "%.1f" p.pdes_oracle_replicas;
          string_of_int p.pdes_cross_sends;
          string_of_int p.pdes_epochs;
          Printf.sprintf "%.4f" p.pdes_p99_latency;
        ])
      points
  in
  Lesslog_report.Table.render ~header rows
