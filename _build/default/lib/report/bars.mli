(** Horizontal ASCII bar charts — categorical quantities (per-policy
    replica counts, per-b fault rates) and histogram buckets. *)

val render :
  ?width:int ->
  ?title:string ->
  ?unit_label:string ->
  (string * float) list ->
  string
(** One bar per (label, value); bars scale to the maximum value over
    [width] (default 50) character cells. Negative values are clamped
    to 0. *)

val of_histogram :
  ?width:int ->
  ?title:string ->
  bucket_width:float ->
  Lesslog_metrics.Histogram.t ->
  string
(** Bucketed view of a histogram, one bar per bucket. *)
