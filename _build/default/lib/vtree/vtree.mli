(** The unique virtual lookup tree — a binomial tree over all [2^m] VIDs
    (paper Section 2.1, Figure 1).

    The tree is implicit: every query is a bit computation on the VID, per
    Properties 1–3 of the paper:
    - Property 1: a VID with [i] leading 1-bits has [i] children, each
      obtained by clearing one of those leading 1s;
    - Property 2: the parent sets the leftmost 0-bit;
    - Property 3: offspring count is monotone non-decreasing in VID value. *)

open Lesslog_id

val is_root : Params.t -> Vid.t -> bool

val child_count : Params.t -> Vid.t -> int
(** Number of children = leading ones of the VID (Property 1). *)

val children : Params.t -> Vid.t -> Vid.t list
(** Children ordered by descending offspring count — i.e. descending VID —
    which is exactly the paper's "children list" order in the complete
    tree. *)

val nth_child : Params.t -> Vid.t -> int -> Vid.t
(** [nth_child params v i] is the child with the [i]-th most offspring,
    [i] in [\[0, child_count)]. @raise Invalid_argument out of range. *)

val parent : Params.t -> Vid.t -> Vid.t option
(** [None] exactly on the root (Property 2). *)

val parent_exn : Params.t -> Vid.t -> Vid.t

val offspring_count : Params.t -> Vid.t -> int
(** [2^leading_ones - 1]: strict descendants, not counting the node. *)

val subtree_size : Params.t -> Vid.t -> int
(** [offspring_count + 1]. *)

val depth : Params.t -> Vid.t -> int
(** Distance to the root = [m - popcount vid]; the O(log N) lookup bound. *)

val is_ancestor : Params.t -> ancestor:Vid.t -> Vid.t -> bool
(** Reflexive ancestry: [is_ancestor ~ancestor:v v] is [true]. *)

val path_to_root : Params.t -> Vid.t -> Vid.t list
(** The VID itself, its parent, ..., the root — the lookup forwarding
    path of Section 2.2. *)

val iter_subtree : Params.t -> Vid.t -> (Vid.t -> unit) -> unit
(** Visit the node and all its descendants (preorder). *)

val fold_subtree : Params.t -> Vid.t -> init:'a -> f:('a -> Vid.t -> 'a) -> 'a
