(** Epoch-invalidated derived state for topology queries.

    A cache entry binds one (status word, tree) pair — keyed by the status
    word's {!Lesslog_membership.Status_word.uid} and the tree's XOR
    constant — to the live set re-expressed in VID space, plus the cached
    maximum live VID and a memo table for children lists. Entries
    revalidate lazily: each access compares the entry's recorded epoch
    with the status word's current {!Lesslog_membership.Status_word.epoch}
    and rebuilds the VID view (O(space/62 + live)) when membership moved.

    State is domain-local ({!Domain.DLS}): the experiment harness fans
    trials out across real domains, and a shared mutable cache would race.
    Entries are only ever an optimization — dropping them (as the bounded
    table does under pressure) costs a rebuild, never correctness. *)

open Lesslog_id
module Status_word = Lesslog_membership.Status_word
module Packed_bits = Lesslog_bits.Packed_bits

type entry = private {
  status : Status_word.t;
  comp : int;
  mutable epoch : int;  (** status epoch the VID view was built at *)
  vids : Packed_bits.t;  (** bit [v] set iff the node with VID [v] is live *)
  mutable max_live_vid : int;  (** largest set VID, [-1] when none *)
  mutable next_pids : int array;
      (** per-PID route_next answers ([-1] = end of route), built lazily
          by {!next_pids}; [\[||\]] when not built for this epoch *)
  children : (int, Pid.t list) Hashtbl.t;
      (** children-list memo, keyed by PID; cleared on rebuild *)
}

val get : Status_word.t -> comp:int -> entry
(** The current, validated entry for this (status word, tree) pair. The
    returned value is only guaranteed fresh until the next status-word
    mutation; hot paths should use it immediately, not store it. *)

val next_pids : entry -> int array
(** The entry's route table: [(next_pids e).(p)] is [Pid.to_int] of
    ROUTE-NEXT(p) in this tree, or [-1] when [p] ends the route. Built on
    first demand per epoch by a descending-VID dynamic program (each
    node's first alive ancestor extends its parent's answer), O(space).
    Same freshness contract as {!get}. *)
