open Lesslog_id
module Bitops = Lesslog_bits.Bitops
module Status_word = Lesslog_membership.Status_word
module Ptree = Lesslog_ptree.Ptree
module Vtree = Lesslog_vtree.Vtree

let reduced_params params =
  Params.create ~m:(Params.m params - Params.b params) ()

let subtree_id_of_vid params v =
  Bitops.low_bits ~width:(Params.b params) (Vid.to_int v)

let subtree_vid_of_vid params v =
  Bitops.high_bits ~total:(Params.m params) ~low:(Params.b params)
    (Vid.to_int v)

let compose_vid params ~subtree_vid ~subtree_id =
  Vid.unsafe_of_int
    (Bitops.splice ~total:(Params.m params) ~low:(Params.b params)
       ~high:subtree_vid subtree_id)

let subtree_id_of_pid tree p =
  subtree_id_of_vid (Ptree.params tree) (Ptree.vid_of_pid tree p)

let migrate_vid params v ~to_subtree =
  compose_vid params ~subtree_vid:(subtree_vid_of_vid params v)
    ~subtree_id:to_subtree

let subtree_root tree ~subtree_id =
  let params = Ptree.params tree in
  let top = Params.mask (reduced_params params) in
  Ptree.pid_of_vid tree (compose_vid params ~subtree_vid:top ~subtree_id)

let members tree ~subtree_id =
  let params = Ptree.params tree in
  let top = Params.mask (reduced_params params) in
  List.init (top + 1) (fun i ->
      Ptree.pid_of_vid tree
        (compose_vid params ~subtree_vid:(top - i) ~subtree_id))

(* Navigation inside a subtree: operate on the subtree VID with the
   reduced parameters, then recompose. *)

let svid_of_pid tree p =
  subtree_vid_of_vid (Ptree.params tree) (Ptree.vid_of_pid tree p)

let pid_of_svid tree ~subtree_id sv =
  Ptree.pid_of_vid tree
    (compose_vid (Ptree.params tree) ~subtree_vid:sv ~subtree_id)

let parent_in_subtree tree p =
  let params = Ptree.params tree in
  let sid = subtree_id_of_pid tree p in
  match
    Vtree.parent (reduced_params params) (Vid.unsafe_of_int (svid_of_pid tree p))
  with
  | None -> None
  | Some sv -> Some (pid_of_svid tree ~subtree_id:sid (Vid.to_int sv))

let children_in_subtree tree p =
  let params = Ptree.params tree in
  let sid = subtree_id_of_pid tree p in
  Vtree.children (reduced_params params)
    (Vid.unsafe_of_int (svid_of_pid tree p))
  |> List.map (fun sv -> pid_of_svid tree ~subtree_id:sid (Vid.to_int sv))

let find_live_node_in_subtree tree status ~subtree_id ~start =
  if
    subtree_id_of_pid tree start = subtree_id
    && Status_word.is_live status start
  then Some start
  else begin
    let rec scan sv =
      if sv < 0 then None
      else
        let p = pid_of_svid tree ~subtree_id sv in
        if Status_word.is_live status p then Some p else scan (sv - 1)
    in
    scan (svid_of_pid tree start - 1)
  end

let insertion_target_in_subtree tree status ~subtree_id =
  find_live_node_in_subtree tree status ~subtree_id
    ~start:(subtree_root tree ~subtree_id)

let insertion_targets tree status =
  let params = Ptree.params tree in
  List.init (Params.subtree_count params) (fun sid -> sid)
  |> List.filter_map (fun sid ->
         insertion_target_in_subtree tree status ~subtree_id:sid)

let first_alive_ancestor_in_subtree tree status p =
  let rec climb p =
    match parent_in_subtree tree p with
    | None -> None
    | Some q -> if Status_word.is_live status q then Some q else climb q
  in
  climb p

let children_list_in_subtree tree status p =
  let rec expand acc p =
    List.fold_left
      (fun acc c ->
        if Status_word.is_live status c then c :: acc else expand acc c)
      acc (children_in_subtree tree p)
  in
  expand [] p
  |> List.sort (fun a b -> compare (svid_of_pid tree b) (svid_of_pid tree a))

let max_live_in_subtree tree status ~subtree_id =
  let params = Ptree.params tree in
  let rec scan sv =
    if sv < 0 then None
    else
      let p = pid_of_svid tree ~subtree_id sv in
      if Status_word.is_live status p then Some p else scan (sv - 1)
  in
  scan (Params.mask (reduced_params params))

let has_live_with_greater_svid tree status p =
  let sid = subtree_id_of_pid tree p in
  match max_live_in_subtree tree status ~subtree_id:sid with
  | None -> false
  | Some g -> svid_of_pid tree g > svid_of_pid tree p

let live_offspring_count_in_subtree tree status p =
  let params = Ptree.params tree in
  let reduced = reduced_params params in
  let sid = subtree_id_of_pid tree p in
  let sv = Vid.unsafe_of_int (svid_of_pid tree p) in
  List.fold_left
    (fun acc q ->
      if
        (not (Pid.equal q p))
        && Status_word.is_live status q
        && Vtree.is_ancestor reduced ~ancestor:sv
             (Vid.unsafe_of_int (svid_of_pid tree q))
      then acc + 1
      else acc)
    0
    (members tree ~subtree_id:sid)

let route_next_in_subtree tree status p =
  let sid = subtree_id_of_pid tree p in
  match first_alive_ancestor_in_subtree tree status p with
  | Some a -> Some a
  | None ->
      let sroot = subtree_root tree ~subtree_id:sid in
      if Status_word.is_live status sroot then None
      else begin
        match insertion_target_in_subtree tree status ~subtree_id:sid with
        | Some g when not (Pid.equal g p) -> Some g
        | Some _ | None -> None
      end

let route_path_in_subtree tree status ~origin =
  let rec go acc p =
    match route_next_in_subtree tree status p with
    | None -> List.rev (p :: acc)
    | Some q -> go (p :: acc) q
  in
  go [] origin
