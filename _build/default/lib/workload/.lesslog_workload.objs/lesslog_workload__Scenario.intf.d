lib/workload/scenario.mli: Demand Lesslog_membership Lesslog_prng
