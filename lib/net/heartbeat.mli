(** Heartbeat failure detector: derive liveness from observed ping
    timeouts instead of oracle knowledge.

    Every [period] seconds the detector runs a round: each monitored peer
    whose previous ping is still unanswered scores a miss, and a fresh
    ping (with a new sequence number) is sent through the caller's [ping]
    callback. A peer that accumulates [suspect_after] consecutive misses
    is {e suspected}; any pong from it — including a late one — resets
    its miss count and, if it was suspected, {e trusts} it again. Both
    transitions are reported through [on_change], which is where a
    simulation drives its membership status word and migration machinery
    from detector output.

    The detector is deliberately fallible in the ways a real one is: under
    message loss it raises false suspicions that later recover, and a
    crash is only detected [suspect_after * period] seconds late. *)

open Lesslog_id

type config = { period : float; suspect_after : int }

val default_config : config
(** Half-second rounds, 5 consecutive misses to suspect: under 20%
    symmetric loss a live peer is spuriously suspected at any instant
    with probability ~[(1 - 0.8^2)^5 < 1%]. *)

type verdict = [ `Suspect | `Trust ]

type t

val create :
  engine:Lesslog_sim.Engine.t ->
  ?config:config ->
  peers:Pid.t array ->
  ping:(seq:int -> Pid.t -> unit) ->
  on_change:(Pid.t -> verdict -> unit) ->
  unit ->
  t
(** [ping ~seq peer] must put a ping on the wire; the caller reports the
    matching pong (or any later one) with {!pong}. [on_change] fires on
    every trusted⟷suspected transition. All peers start trusted.
    @raise Invalid_argument when [period <= 0] or [suspect_after < 1]. *)

val start : t -> until:float -> unit
(** Schedule rounds every [period] seconds from now up to [until]
    (simulated time). *)

val pong : t -> peer:Pid.t -> seq:int -> unit
(** Evidence of life. Unknown peers and forged sequence numbers are
    ignored; stale sequence numbers still count. *)

val suspected : t -> Pid.t -> bool
(** Current verdict for a monitored peer ([false] for unmonitored ones). *)

val suspected_count : t -> int

val rounds : t -> int
(** Ping rounds run so far. *)

val suspicions : t -> int
(** Total trusted→suspected transitions. *)

val recoveries : t -> int
(** Total suspected→trusted transitions. *)
