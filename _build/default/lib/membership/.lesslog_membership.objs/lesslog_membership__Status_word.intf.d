lib/membership/status_word.mli: Format Lesslog_id Lesslog_prng Params Pid
